"""The cross-query source cache: correctness and accounting (docs/SERVICE.md).

The load-bearing guarantees, property-tested with hypothesis:

* a query over a warm cache computes the *byte-identical* answer a cold
  run computes (same objects, same exact scores) -- the cache replays the
  logical access sequence, it never shortcuts it;
* warmth only ever helps: the charged cost of a repeated query is
  monotonically non-increasing, and a fully-warm repeat charges zero.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.nc import NC
from repro.core.framework import FrameworkNC
from repro.core.policies import SRGPolicy
from repro.data.dataset import Dataset, dataset1
from repro.data.generators import uniform
from repro.exceptions import ReproError
from repro.scoring.functions import Avg, Max, Min
from repro.sources.cache import SourceCache
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware
from repro.types import Access

score_value = st.one_of(
    st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32),
)


@st.composite
def instances(draw, max_m: int = 3):
    n = draw(st.integers(min_value=1, max_value=20))
    m = draw(st.integers(min_value=1, max_value=max_m))
    rows = draw(
        st.lists(
            st.lists(score_value, min_size=m, max_size=m),
            min_size=n,
            max_size=n,
        )
    )
    dataset = Dataset(np.array(rows, dtype=float))
    fn = draw(st.sampled_from([Min(m), Max(m), Avg(m)]))
    k = draw(st.integers(min_value=1, max_value=n))
    return dataset, fn, k


def run_nc(middleware, fn, k):
    # Small planning sample: these tests exercise the cache, not the
    # optimizer, and hypothesis runs the planner once per example.
    return NC(seed=0, sample_size=30).run(middleware, fn, k)


class TestWarmEqualsCold:
    @settings(max_examples=40, deadline=None)
    @given(instances())
    def test_warm_run_is_byte_identical_to_cold(self, instance):
        dataset, fn, k = instance
        model = CostModel.uniform(dataset.m, cs=1.0, cr=2.0)
        cold = run_nc(Middleware.over(dataset, model), fn, k)

        cache = SourceCache.over(dataset, model)
        first = run_nc(Middleware.warm(cache, model), fn, k)
        cache.tick()
        warm_mw = Middleware.warm(cache, model)
        warm = run_nc(warm_mw, fn, k)

        for run in (first, warm):
            assert [e.obj for e in run.ranking] == [e.obj for e in cold.ranking]
            assert [e.score for e in run.ranking] == [
                e.score for e in cold.ranking
            ]
        # The fully-warm repeat replayed entirely inside the cache.
        assert warm_mw.stats.total_cost() == 0.0
        assert warm_mw.stats.total_cached > 0

    @settings(max_examples=40, deadline=None)
    @given(instances())
    def test_charged_cost_monotone_in_warmth(self, instance):
        dataset, fn, k = instance
        model = CostModel.uniform(dataset.m, cs=1.0, cr=2.0)
        cache = SourceCache.over(dataset, model)
        costs = []
        for _ in range(3):
            middleware = Middleware.warm(cache, model)
            run_nc(middleware, fn, k)
            costs.append(middleware.stats.total_cost())
            cache.tick()
        assert costs[0] >= costs[1] >= costs[2]
        assert costs[1] == 0.0 and costs[2] == 0.0

    def test_related_query_pays_only_the_frontier(self):
        dataset = uniform(300, 2, seed=5)
        model = CostModel.uniform(2, cs=1.0, cr=2.0)
        cache = SourceCache.over(dataset, model)
        run_nc(Middleware.warm(cache, model), Min(2), 5)
        cache.tick()

        cold = Middleware.over(dataset, model)
        cold_result = run_nc(cold, Avg(2), 5)
        warm = Middleware.warm(cache, model)
        warm_result = run_nc(warm, Avg(2), 5)
        assert [e.obj for e in warm_result.ranking] == [
            e.obj for e in cold_result.ranking
        ]
        assert warm.stats.total_cost() < cold.stats.total_cost()
        assert warm.stats.total_cached > 0


class TestViewSemantics:
    def test_views_replay_last_seen_bounds(self):
        dataset = dataset1()
        model = CostModel.uniform(dataset.m)
        cache = SourceCache.over(dataset, model)
        fresh = Middleware.over(dataset, model)
        warm = Middleware.warm(cache, model)
        for _ in range(3):
            expected = fresh.sorted_access(0)
            assert warm.sorted_access(0) == expected
            assert warm.last_seen(0) == fresh.last_seen(0)
        # A second view over the now-warm cache replays the same bounds.
        cache.tick()
        replay = Middleware.warm(cache, model)
        fresh2 = Middleware.over(dataset, model)
        for _ in range(3):
            assert replay.sorted_access(0) == fresh2.sorted_access(0)
            assert replay.last_seen(0) == fresh2.last_seen(0)
        assert replay.stats.total_cost() == 0.0

    def test_exhaustion_is_cached_and_replayed(self):
        dataset = uniform(4, 1, seed=0)
        model = CostModel.uniform(1)
        cache = SourceCache.over(dataset, model)
        view = cache.view(0)
        while view.sorted_access() is not None:
            pass
        assert view.exhausted and view.last_seen == 0.0
        replay = cache.view(0)
        delivered = 0
        while replay.sorted_access() is not None:
            delivered += 1
        assert delivered == 4
        assert replay.exhausted and replay.last_seen == 0.0
        # All replay deliveries (and the exhaustion probe) were hits.
        assert cache.stats.sorted_hits == 4

    def test_random_memo_hits(self):
        dataset = uniform(10, 2, seed=1)
        model = CostModel.uniform(2)
        cache = SourceCache.over(dataset, model)
        view = cache.view(1)
        first = view.random_access(3)
        assert cache.stats.random_misses == 1
        again = cache.view(1).random_access(3)
        assert again == first
        assert cache.stats.random_hits == 1
        assert cache.memo_size(1) == 1

    def test_view_reset_keeps_cache_intact(self):
        dataset = uniform(10, 1, seed=2)
        cache = SourceCache.over(dataset, CostModel.uniform(1))
        view = cache.view(0)
        a = view.sorted_access()
        view.reset()
        assert view.depth == 0 and view.last_seen == 1.0
        assert view.sorted_access() == a
        assert cache.warmth(0) == 1

    def test_stale_view_fails_loudly_after_eviction(self):
        dataset = uniform(10, 1, seed=3)
        cache = SourceCache.over(dataset, CostModel.uniform(1))
        view = cache.view(0)
        view.sorted_access()
        cache.invalidate(0)
        with pytest.raises(ReproError, match="evicted"):
            view.sorted_access()
        with pytest.raises(ReproError, match="evicted"):
            view.last_seen


class TestEviction:
    def test_ttl_expires_idle_entries(self):
        dataset = uniform(20, 2, seed=4)
        model = CostModel.uniform(2)
        cache = SourceCache.over(dataset, model, ttl=2)
        cache.view(0).sorted_access()
        assert cache.warmth(0) == 1
        assert cache.tick() == 0  # age 1 < ttl
        assert cache.tick() == 1  # age 2 -> expired
        assert cache.warmth(0) == 0
        assert cache.stats.evictions == 1

    def test_touch_refreshes_ttl(self):
        dataset = uniform(20, 1, seed=4)
        cache = SourceCache.over(dataset, CostModel.uniform(1), ttl=2)
        cache.view(0).sorted_access()
        cache.tick()
        cache.view(0).sorted_access()  # hit, but touches the entry at clock 1
        assert cache.tick() == 0
        assert cache.warmth(0) == 1

    def test_max_entries_evicts_lru_wholesale(self):
        dataset = uniform(50, 2, seed=6)
        model = CostModel.uniform(2)
        cache = SourceCache.over(dataset, model, max_entries=5)
        view0 = cache.view(0)
        for _ in range(4):
            view0.sorted_access()
        cache.tick()
        view1 = cache.view(1)
        for _ in range(4):
            view1.sorted_access()
        assert cache.entry_count == 8
        cache.tick()  # over the bound: evict LRU predicate 0 wholesale
        assert cache.warmth(0) == 0
        assert cache.warmth(1) == 4
        assert cache.entry_count == 4

    def test_evicted_entries_are_repaid(self):
        dataset = uniform(100, 2, seed=7)
        model = CostModel.uniform(2)
        cache = SourceCache.over(dataset, model, ttl=1)
        mw = Middleware.warm(cache, model)
        cost_cold = _run_min(mw)
        cache.tick()  # everything idles out (ttl=1)
        repaid = Middleware.warm(cache, model)
        assert _run_min(repaid) == cost_cold
        assert repaid.stats.total_cached == 0

    def test_invalidate_all(self):
        dataset = uniform(30, 2, seed=8)
        model = CostModel.uniform(2)
        cache = SourceCache.over(dataset, model)
        _run_min(Middleware.warm(cache, model))
        assert cache.entry_count > 0
        cache.invalidate()
        assert cache.entry_count == 0
        assert cache.stats.evictions == 2


def _run_min(middleware):
    fn = Min(middleware.m)
    result = NC(seed=0).run(middleware, fn, 3)
    assert len(result.ranking) == 3
    return middleware.stats.total_cost()


class TestMeteringIntegration:
    def test_charged_cost_is_zero_on_hits(self):
        dataset = uniform(20, 2, seed=9)
        model = CostModel(cs=(1.0, 3.0), cr=(2.0, 5.0))
        cache = SourceCache.over(dataset, model)
        mw = Middleware.warm(cache, model)
        assert mw.charged_cost(Access.sorted(0)) == 1.0
        mw.sorted_access(0)
        cache.tick()
        warm = Middleware.warm(cache, model)
        assert warm.charged_cost(Access.sorted(0)) == 0.0
        assert warm.charged_cost(Access.sorted(1)) == 3.0

    def test_cached_accesses_excluded_from_eq1(self):
        dataset = uniform(20, 2, seed=10)
        model = CostModel.uniform(2, cs=1.0, cr=2.0)
        cache = SourceCache.over(dataset, model)
        mw = Middleware.warm(cache, model)
        obj, _ = mw.sorted_access(0)
        mw.random_access(1, obj)
        assert mw.stats.total_cost() == 3.0
        cache.tick()
        warm = Middleware.warm(cache, model)
        assert warm.sorted_access(0) is not None
        warm.random_access(1, obj)
        assert warm.stats.total_cost() == 0.0
        assert warm.stats.total_accesses == 0
        assert warm.stats.total_cached == 2
        snap = warm.stats.snapshot()
        assert snap["total_cached"] == 2

    def test_warm_reset_clears_query_state_not_cache(self):
        dataset = uniform(40, 2, seed=11)
        model = CostModel.uniform(2)
        cache = SourceCache.over(dataset, model)
        mw = Middleware.warm(cache, model)
        _run_min(mw)
        warmth_before = cache.warmth(0) + cache.warmth(1)
        mw.reset()
        assert mw.stats.total_accesses == 0
        assert cache.warmth(0) + cache.warmth(1) == warmth_before
        # The same middleware replays from the (still warm) cache.
        assert _run_min(mw) == 0.0

    def test_budget_only_meters_frontier_accesses(self):
        dataset = uniform(200, 2, seed=12)
        model = CostModel.uniform(2, cs=1.0, cr=2.0)
        cache = SourceCache.over(dataset, model)
        cold_cost = _run_min(Middleware.warm(cache, model))
        cache.tick()
        # A budget far below the cold cost is plenty for a warm replay.
        tight = Middleware.warm(cache, model, budget=cold_cost / 10)
        assert _run_min(tight) == 0.0
