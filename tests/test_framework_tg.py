"""Tests for the trivially-general reference engine (Figure 4)."""

import pytest

from repro.core.framework import FrameworkNC, FrameworkTG
from repro.core.policies import RandomPolicy, RoundRobinPolicy, SRGPolicy
from repro.core.tasks import UNSEEN
from repro.data.generators import uniform
from repro.scoring.functions import Avg, Min
from repro.types import Access
from tests.conftest import assert_valid_topk, mw_over


class TestCorrectness:
    def test_tg_answers_exactly(self, small_uniform):
        mw = mw_over(small_uniform)
        engine = FrameworkTG(mw, Min(2), 3, RoundRobinPolicy())
        result = engine.run()
        assert_valid_topk(result, small_uniform, Min(2), 3)

    def test_tg_with_random_policy_terminates_correctly(self, small_uniform):
        mw = mw_over(small_uniform)
        engine = FrameworkTG(mw, Avg(2), 2, RandomPolicy(seed=5))
        result = engine.run()
        assert_valid_topk(result, small_uniform, Avg(2), 2)


class TestNonSpecificity:
    """Section 4: TG's choice sets are huge; NC's are the necessary few."""

    def test_tg_offers_far_more_alternatives(self, medium_uniform):
        tg_sizes: list[int] = []
        nc_sizes: list[int] = []

        mw = mw_over(medium_uniform)
        tg = FrameworkTG(
            mw,
            Min(3),
            3,
            RoundRobinPolicy(),
            observer=lambda s: tg_sizes.append(len(s.alternatives)),
        )
        tg.run()

        mw2 = mw_over(medium_uniform)
        nc = FrameworkNC(
            mw2,
            Min(3),
            3,
            RoundRobinPolicy(),
            observer=lambda s: nc_sizes.append(len(s.alternatives)),
        )
        nc.run()

        # NC offers at most 2 accesses per undetermined predicate of one
        # object; TG offers accesses for every seen object.
        assert max(nc_sizes) <= 2 * 3
        assert max(tg_sizes) > max(nc_sizes)

    def test_nc_alternatives_bounded_by_2m(self, medium_uniform):
        sizes: list[int] = []
        mw = mw_over(medium_uniform)
        engine = FrameworkNC(
            mw,
            Min(3),
            5,
            SRGPolicy([0.5] * 3),
            observer=lambda s: sizes.append(len(s.alternatives)),
        )
        engine.run()
        assert all(size <= 2 * 3 for size in sizes)


class TestTGAlternativesContents:
    def test_tg_includes_probes_on_all_seen_objects(self, small_uniform):
        observed: list = []
        mw = mw_over(small_uniform)
        engine = FrameworkTG(
            mw, Min(2), 2, RoundRobinPolicy(), observer=observed.append
        )
        engine.run()
        # Find an iteration with at least two seen objects and check the
        # pool covers probes for more than one object.
        late = [s for s in observed if len(s.alternatives) > 4]
        assert late, "TG should accumulate large pools"
        step = late[-1]
        probe_targets = {
            acc.obj for acc in step.alternatives if acc.is_random
        }
        assert len(probe_targets) >= 2

    def test_tg_target_still_reported(self, small_uniform):
        observed: list = []
        mw = mw_over(small_uniform)
        engine = FrameworkTG(
            mw, Min(2), 1, RoundRobinPolicy(), observer=observed.append
        )
        engine.run()
        assert observed[0].target == UNSEEN
