"""Property-based fuzzing of the middleware and score-state invariants.

Hypothesis drives random *legal* access sequences against a middleware
and checks the structural invariants everything else relies on:

* accounting: counts and Eq. 1 cost always match an independent replay;
* last-seen bounds are monotone nonincreasing per predicate;
* sorted lists deliver each object at most once, in nonincreasing score
  order, and exactly ``n`` times when exhausted;
* the seen set only grows, and equals the union of sorted deliveries;
* ScoreState bounds stay sound (``F_min <= F <= F_max``) under any
  interleaving.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.state import ScoreState
from repro.data.dataset import Dataset
from repro.scoring.functions import Avg, Min
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware

score_value = st.one_of(
    st.sampled_from([0.0, 0.25, 0.5, 1.0]),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32),
)


@st.composite
def small_dataset(draw, max_n=12, m=2):
    n = draw(st.integers(min_value=1, max_value=max_n))
    rows = draw(
        st.lists(
            st.lists(score_value, min_size=m, max_size=m),
            min_size=n,
            max_size=n,
        )
    )
    return Dataset(np.array(rows, dtype=float))


class TestMiddlewareFuzz:
    @settings(max_examples=60, deadline=None)
    @given(small_dataset(), st.data())
    def test_invariants_under_random_legal_sequences(self, dataset, data):
        mw = Middleware.over(
            dataset, CostModel.uniform(2, cs=1.0, cr=2.0), record_log=True
        )
        m = dataset.m
        last_seen = {i: 1.0 for i in range(m)}
        deliveries: dict[int, list[float]] = {i: [] for i in range(m)}
        delivered_objs: dict[int, set[int]] = {i: set() for i in range(m)}
        seen_before: set[int] = set()

        for _ in range(data.draw(st.integers(min_value=0, max_value=40))):
            # Enumerate the currently legal moves.
            moves = []
            for i in range(m):
                if not mw.exhausted(i):
                    moves.append(("sa", i, None))
            for obj in sorted(mw.seen):
                for i in range(m):
                    if not mw.was_delivered(i, obj):
                        moves.append(("ra", i, obj))
            if not moves:
                break
            kind, pred, obj = data.draw(st.sampled_from(moves))
            if kind == "sa":
                delivered = mw.sorted_access(pred)
                assert delivered is not None
                got_obj, got_score = delivered
                # Exact score, descending order, no repeats.
                assert got_score == dataset.score(got_obj, pred)
                if deliveries[pred]:
                    assert got_score <= deliveries[pred][-1] + 1e-12
                assert got_obj not in delivered_objs[pred], "no repeats"
                delivered_objs[pred].add(got_obj)
                deliveries[pred].append(got_score)
                # Last-seen bound nonincreasing.
                assert mw.last_seen(pred) <= last_seen[pred] + 1e-12
                last_seen[pred] = mw.last_seen(pred)
                # Seen set grows.
                assert seen_before <= mw.seen
                seen_before = set(mw.seen)
            else:
                score = mw.random_access(pred, obj)
                assert score == dataset.score(obj, pred)
                # Probes never move sorted bounds.
                assert mw.last_seen(pred) == last_seen[pred]

        # Accounting replay: the log re-prices to the aggregate numbers.
        model = mw.cost_model
        log = mw.stats.log
        assert sum(model.access_cost(acc) for acc in log) == mw.stats.total_cost()
        assert sum(acc.is_sorted for acc in log) == mw.stats.total_sorted
        assert sum(acc.is_random for acc in log) == mw.stats.total_random
        # Per-list delivery counts within n; exhausted lists delivered all.
        for i in range(m):
            assert mw.depth(i) == len(deliveries[i]) <= dataset.n
            if mw.exhausted(i):
                assert len(deliveries[i]) == dataset.n


class TestScoreStateSoundnessFuzz:
    @settings(max_examples=60, deadline=None)
    @given(small_dataset(), st.data())
    def test_bounds_bracket_truth_under_any_interleaving(self, dataset, data):
        fn = data.draw(st.sampled_from([Min(2), Avg(2)]))
        mw = Middleware.over(dataset, CostModel.uniform(2))
        state = ScoreState(mw, fn)

        for _ in range(data.draw(st.integers(min_value=0, max_value=30))):
            moves = []
            for i in range(2):
                if not mw.exhausted(i):
                    moves.append(("sa", i, None))
            for obj in sorted(mw.seen):
                for i in state.undetermined(obj):
                    moves.append(("ra", i, obj))
            if not moves:
                break
            kind, pred, obj = data.draw(st.sampled_from(moves))
            if kind == "sa":
                got_obj, got_score = mw.sorted_access(pred)
                state.record(pred, got_obj, got_score)
            else:
                state.record(pred, obj, mw.random_access(pred, obj))

            # Soundness for every object, tracked or not.
            for u in range(dataset.n):
                true = fn(dataset.object_scores(u))
                assert state.lower_bound(u) <= true + 1e-12
                assert state.upper_bound(u) >= true - 1e-12
            # The unseen bound covers every genuinely unseen object.
            for u in range(dataset.n):
                if not mw.is_seen(u):
                    true = fn(dataset.object_scores(u))
                    assert state.unseen_bound() >= true - 1e-12
            # Complete objects have collapsed intervals.
            for u in list(state.tracked()):
                if state.is_complete(u):
                    assert state.lower_bound(u) == state.upper_bound(u)
                    assert state.exact_score(u) == fn(dataset.object_scores(u))
