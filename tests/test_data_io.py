"""Tests for dataset CSV/NPZ persistence."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.generators import uniform
from repro.data.io import load_csv, load_npz, save_csv, save_npz


@pytest.fixture
def dataset():
    return uniform(25, 3, seed=44)


class TestCsvRoundTrip:
    def test_with_header(self, dataset, tmp_path):
        path = tmp_path / "scores.csv"
        save_csv(dataset, path, predicate_names=["a", "b", "c"])
        loaded, names = load_csv(path)
        assert names == ["a", "b", "c"]
        assert np.array_equal(loaded.matrix, dataset.matrix)

    def test_without_header(self, dataset, tmp_path):
        path = tmp_path / "scores.csv"
        save_csv(dataset, path)
        loaded, names = load_csv(path, header=False)
        assert names is None
        assert np.array_equal(loaded.matrix, dataset.matrix)

    def test_exact_float_preservation(self, tmp_path):
        original = Dataset([[0.1 + 0.2, 1 / 3]])  # awkward floats
        path = tmp_path / "exact.csv"
        save_csv(original, path)
        loaded, _ = load_csv(path, header=False)
        assert loaded.matrix[0, 0] == original.matrix[0, 0]
        assert loaded.matrix[0, 1] == original.matrix[0, 1]

    def test_name_count_validated(self, dataset, tmp_path):
        with pytest.raises(ValueError):
            save_csv(dataset, tmp_path / "x.csv", predicate_names=["a"])

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_csv(path)

    def test_header_only_rejected(self, tmp_path):
        path = tmp_path / "only_header.csv"
        path.write_text("a,b\n")
        with pytest.raises(ValueError, match="no data rows"):
            load_csv(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n0.5,oops\n")
        with pytest.raises(ValueError, match="non-numeric"):
            load_csv(path)

    def test_out_of_range_rejected(self, tmp_path):
        path = tmp_path / "range.csv"
        path.write_text("0.5,1.5\n")
        with pytest.raises(ValueError):
            load_csv(path, header=False)


class TestNpzRoundTrip:
    def test_with_names(self, dataset, tmp_path):
        path = tmp_path / "scores.npz"
        save_npz(dataset, path, predicate_names=["x", "y", "z"])
        loaded, names = load_npz(path)
        assert names == ["x", "y", "z"]
        assert np.array_equal(loaded.matrix, dataset.matrix)

    def test_without_names(self, dataset, tmp_path):
        path = tmp_path / "scores.npz"
        save_npz(dataset, path)
        loaded, names = load_npz(path)
        assert names is None
        assert np.array_equal(loaded.matrix, dataset.matrix)

    def test_missing_scores_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(path, other=np.zeros(3))
        with pytest.raises(ValueError, match="missing 'scores'"):
            load_npz(path)

    def test_name_count_validated(self, dataset, tmp_path):
        with pytest.raises(ValueError):
            save_npz(dataset, tmp_path / "x.npz", predicate_names=["a"])


class TestLoadedDataIsQueryable:
    def test_csv_to_query_pipeline(self, dataset, tmp_path):
        from repro.query import parse_query, run_query
        from repro.sources.cost import CostModel
        from repro.sources.middleware import Middleware
        from repro.scoring.functions import Min

        path = tmp_path / "scores.csv"
        save_csv(dataset, path, predicate_names=["rating", "close", "cheap"])
        loaded, names = load_csv(path)
        query = parse_query(
            "SELECT * FROM t ORDER BY min(rating, close, cheap) STOP AFTER 3"
        )
        mw = Middleware.over(loaded, CostModel.uniform(3))
        result = run_query(query, mw, schema=names)
        oracle = dataset.topk(Min(3), 3)
        assert result.objects == [entry.obj for entry in oracle]
