"""Regression tests for the silently-degrading accounting paths.

Three bugs rode the pre-observability code, all of the "numbers quietly
wrong" kind:

1. an estimator worker-pool failure fell back to serial simulation
   without any signal -- no counter, no warning, invisible in optimizer
   notes;
2. ``QueryServer.stats()["degraded_predicates"]`` was evaluated at the
   stale between-sessions clock base, so a mid-query caller saw breaker
   cooldowns as still running after they had already elapsed;
3. :class:`CostMonitor` only observed *successful* access durations, so
   a source failing slowly on every attempt (timeouts burning the whole
   deadline) never registered as drift.

Each test here fails on the pre-fix code.
"""

import warnings

import pytest

from repro.contracts import ContractChecker
from repro.data.generators import uniform
from repro.exceptions import RetryExhaustedError
from repro.faults import FaultProfile, RetryPolicy, chaos_middleware
from repro.faults.breaker import BreakerPolicy
from repro.obs import MetricsRegistry
from repro.optimizer.estimator import CostEstimator
from repro.optimizer.optimizer import NCOptimizer
from repro.optimizer.sampling import dummy_uniform_sample
from repro.scoring.functions import Min
from repro.service import QueryServer, ServerConfig
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware
from repro.sources.monitor import CostMonitor
from repro.types import AccessType


# ----------------------------------------------------------------------
# Bugfix 1: worker-pool failures must be loud
# ----------------------------------------------------------------------


class _BrokenPool:
    """Quacks like a ProcessPoolExecutor whose workers have died."""

    def map(self, fn, items):
        raise RuntimeError("pool workers are gone")

    def shutdown(self, wait=True, cancel_futures=False):
        pass


def _panel(count: int, offset: float = 0.0) -> list[tuple[float, float]]:
    return [
        (round(0.1 + 0.08 * i + offset, 6), round(0.95 - 0.05 * i, 6))
        for i in range(count)
    ]


class TestPoolFailureSurfaces:
    def _estimator(self, metrics=None, workers=2):
        sample = dummy_uniform_sample(2, 60, seed=1)
        return CostEstimator(
            sample,
            Min(2),
            5,
            300,
            CostModel.uniform(2),
            vectorized=True,
            verify=False,
            workers=workers,
            metrics=metrics,
        )

    def test_poisoned_pool_warns_counts_and_matches_serial(self):
        metrics = MetricsRegistry()
        est = self._estimator(metrics=metrics)
        est._pool = _BrokenPool()
        panel = _panel(10)
        with pytest.warns(RuntimeWarning, match="worker pool failed"):
            costs = est.estimate_many(panel)
        # The failure is counted, not swallowed.
        assert est.pool_failures == 1
        assert metrics.total("repro_estimator_pool_failures_total") == 1.0
        # ... and the results are still correct (serial fallback).
        serial = self._estimator(workers=None)
        assert costs == serial.estimate_many(panel)

    def test_warns_once_then_stays_serial(self):
        est = self._estimator()
        est._pool = _BrokenPool()
        with pytest.warns(RuntimeWarning):
            est.estimate_many(_panel(10))
        # Later batches run serially without re-warning or re-counting.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            est.estimate_many(_panel(10, offset=0.005))
        assert est.pool_failures == 1
        est.close()

    def test_optimizer_notes_carry_pool_failures(self):
        sample = dummy_uniform_sample(2, 50, seed=2)
        plan = NCOptimizer(vectorized=True).plan(
            sample, Min(2), 5, 200, CostModel.uniform(2)
        )
        assert plan.notes["pool_failures"] == 0


# ----------------------------------------------------------------------
# Bugfix 2: degraded_predicates at the live clock, not the stale base
# ----------------------------------------------------------------------


class _ProbingChecker(ContractChecker):
    """Samples ``server.stats()`` from inside a running query.

    ``observe_sorted`` fires on every delivered sorted access, i.e. while
    the session's middleware is live -- exactly the vantage point from
    which the old ``stats()`` reported stale breaker state.
    """

    def __init__(self):
        super().__init__()
        self.server = None
        self.probes = []

    def observe_sorted(self, predicate, score, last_seen):
        if self.server is not None:
            breaker = self.server.breakers[(1, AccessType.RANDOM)]
            self.probes.append(
                {
                    "degraded": self.server.stats()["degraded_predicates"],
                    # state(0) is OPEN iff the breaker is still tripped
                    # internally (cooldown not yet consumed by a trial).
                    "still_tripped": not breaker.allows(0),
                }
            )
        super().observe_sorted(predicate, score, last_seen)


class TestDegradedPredicatesLiveClock:
    def _server(self, checker):
        return QueryServer(
            CostModel.uniform(2),
            dataset=uniform(20, 2, seed=5),
            schema=("a", "b"),
            config=ServerConfig(
                breaker_policy=BreakerPolicy(failure_threshold=1, cooldown=3),
                contracts=checker,
            ),
        )

    def test_mid_query_stats_sees_elapsed_cooldown(self):
        checker = _ProbingChecker()
        server = self._server(checker)
        checker.server = server
        # Predicate b's random channel tripped at clock 0 (prior outage
        # knowledge), cooldown of 3 recorded accesses.
        server.breakers[(1, AccessType.RANDOM)].record_failure(0)
        assert server.stats()["degraded_predicates"] == [1]

        # A query over predicate a alone charges sorted accesses; the
        # cooldown elapses on that clock while the breaker stays tripped.
        server.query("SELECT * FROM r ORDER BY a STOP AFTER 8")

        assert len(checker.probes) >= 4
        # Early probes (clock < cooldown) still report the predicate.
        assert checker.probes[0]["degraded"] == [1]
        # Once the *live* clock passes the cooldown the breaker offers a
        # half-open trial, so a mid-query stats() call must stop calling
        # the predicate degraded -- even though the breaker is still
        # tripped internally. The pre-fix stats() evaluated at the stale
        # between-sessions clock base (0), where the cooldown never
        # elapses, so no such probe existed: every still-tripped probe
        # kept reporting [1].
        elapsed = [
            p
            for p in checker.probes
            if p["still_tripped"] and p["degraded"] == []
        ]
        assert elapsed, "no mid-query probe saw the cooldown elapse"
        # And after the half-open trial succeeds the predicate stays
        # healthy for good.
        assert checker.probes[-1]["degraded"] == []

    def test_server_agrees_with_middleware_helper(self):
        checker = ContractChecker()
        server = self._server(checker)
        server.query("SELECT * FROM r ORDER BY a STOP AFTER 3")
        server.breakers[(1, AccessType.RANDOM)].record_failure(
            server.current_clock()
        )
        middleware = Middleware.warm(
            server.cache,
            server.cost_model,
            breakers=server.breakers,
            clock_base=server.current_clock(),
        )
        assert (
            server.stats()["degraded_predicates"]
            == middleware.degraded_predicates()
            == [1]
        )


# ----------------------------------------------------------------------
# Bugfix 3: failed-attempt durations feed the cost monitor
# ----------------------------------------------------------------------


class TestMonitorObservesFailures:
    def _chaos(self, monitor):
        # Every attempt times out after burning the full 9-unit deadline;
        # the assumed cost model believes an access takes 1 unit.
        return chaos_middleware(
            uniform(30, 2, seed=5),
            CostModel.uniform(2),
            FaultProfile(timeout_rate=1.0),
            seed=1,
            retry_policy=RetryPolicy(max_attempts=3, timeout=9.0),
            monitor=monitor,
        )

    def test_slow_failing_source_registers_as_drift(self):
        monitor = CostMonitor(CostModel.uniform(2), min_observations=3)
        middleware = self._chaos(monitor)
        with pytest.raises(RetryExhaustedError):
            middleware.sorted_access(0)
        # All three failed attempts burned the deadline and were folded
        # into the running means; pre-fix the monitor saw nothing at all.
        assert monitor.failure_observations == 3
        assert monitor.observations(0, AccessType.SORTED) == 3
        assert monitor.estimated_cost(0, AccessType.SORTED) == pytest.approx(9.0)
        assert monitor.drifted(tolerance=2.0)

    def test_observe_failures_flag_opts_out(self):
        monitor = CostMonitor(
            CostModel.uniform(2), min_observations=3, observe_failures=False
        )
        middleware = self._chaos(monitor)
        with pytest.raises(RetryExhaustedError):
            middleware.sorted_access(0)
        assert monitor.failure_observations == 0
        assert monitor.observations(0, AccessType.SORTED) == 0
        assert not monitor.drifted(tolerance=2.0)

    def test_reset_clears_failure_observations(self):
        monitor = CostMonitor(CostModel.uniform(2), min_observations=1)
        middleware = self._chaos(monitor)
        with pytest.raises(RetryExhaustedError):
            middleware.sorted_access(0)
        assert monitor.failure_observations > 0
        monitor.reset()
        assert monitor.failure_observations == 0
        assert not monitor.drifted()
