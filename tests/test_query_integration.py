"""End-to-end tests: parse SQL-like text, execute over a middleware."""

import pytest

from repro.algorithms.ta import TA
from repro.data.generators import uniform
from repro.query import QueryError, compile_expression, parse_query, run_query
from repro.scoring.functions import Min, WeightedSum
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware
from tests.conftest import assert_valid_topk, mw_over


class TestCompileExpression:
    def test_default_order_is_first_appearance(self):
        query = parse_query("SELECT * FROM r ORDER BY min(b, a) STOP AFTER 1")
        fn, order = compile_expression(query.expr)
        assert order == ("b", "a")
        assert fn([0.2, 0.9]) == pytest.approx(0.2)

    def test_schema_realigns_inputs(self):
        query = parse_query(
            "SELECT * FROM r ORDER BY 0.9*a + 0.1*b STOP AFTER 1"
        )
        fn, order = compile_expression(query.expr, schema=["b", "a"])
        assert order == ("b", "a")
        # Input vector is (b, a): a=1 contributes 0.9.
        assert fn([0.0, 1.0]) == pytest.approx(0.9)

    def test_schema_may_contain_unreferenced_predicates(self):
        query = parse_query("SELECT * FROM r ORDER BY a STOP AFTER 1")
        fn, order = compile_expression(query.expr, schema=["a", "unused"])
        assert fn([0.7, 0.1]) == pytest.approx(0.7)

    def test_missing_predicate_rejected(self):
        query = parse_query("SELECT * FROM r ORDER BY min(a, b) STOP AFTER 1")
        with pytest.raises(QueryError, match="not in the schema"):
            compile_expression(query.expr, schema=["a"])

    def test_duplicate_schema_rejected(self):
        query = parse_query("SELECT * FROM r ORDER BY a STOP AFTER 1")
        with pytest.raises(QueryError, match="duplicate"):
            compile_expression(query.expr, schema=["a", "a"])

    def test_matches_builtin_functions(self):
        query = parse_query(
            "SELECT * FROM r ORDER BY 0.3*a + 0.7*b STOP AFTER 1"
        )
        fn, _ = compile_expression(query.expr)
        builtin = WeightedSum([0.3, 0.7])
        for point in ([0.1, 0.9], [0.5, 0.5], [1.0, 0.0]):
            assert fn(point) == pytest.approx(builtin(point))


class TestRunQuery:
    def test_end_to_end_with_default_nc(self, small_uniform):
        query = parse_query(
            "SELECT * FROM objects ORDER BY min(quality, distance) STOP AFTER 4"
        )
        mw = mw_over(small_uniform)
        result = run_query(query, mw, schema=["quality", "distance"])
        assert_valid_topk(result, small_uniform, Min(2), 4)
        assert "min(quality, distance)" in result.metadata["query"]

    def test_custom_algorithm(self, small_uniform):
        query = parse_query(
            "SELECT * FROM objects ORDER BY min(a, b) STOP AFTER 3"
        )
        mw = mw_over(small_uniform)
        result = run_query(query, mw, schema=["a", "b"], algorithm=TA())
        assert result.algorithm == "TA"
        assert_valid_topk(result, small_uniform, Min(2), 3)

    def test_schema_width_mismatch(self, small_uniform):
        query = parse_query("SELECT * FROM r ORDER BY a STOP AFTER 1")
        mw = mw_over(small_uniform)
        with pytest.raises(QueryError, match="serves 2"):
            run_query(query, mw, schema=["a"])

    def test_schema_order_independence(self):
        """The same query gives the same answer regardless of how the
        middleware happens to order its predicates."""
        data = uniform(120, 2, seed=14)
        text = "SELECT * FROM r ORDER BY 0.8*hot + 0.2*cheap STOP AFTER 5"
        query = parse_query(text)

        mw_a = Middleware.over(data, CostModel.uniform(2))
        res_a = run_query(query, mw_a, schema=["hot", "cheap"])

        # Swap the physical predicate order by swapping columns + schema.
        import numpy as np
        from repro.data.dataset import Dataset

        swapped = Dataset(np.column_stack([data.column(1), data.column(0)]))
        mw_b = Middleware.over(swapped, CostModel.uniform(2))
        res_b = run_query(query, mw_b, schema=["cheap", "hot"])

        assert res_a.objects == res_b.objects
        assert res_a.scores == pytest.approx(res_b.scores)

    def test_paper_q2_shape(self):
        """Example 2's hotel query, straight from its SQL-like form."""
        from repro.data.travel import hotels_dataset

        data = hotels_dataset(300, seed=13)
        query = parse_query(
            "SELECT name FROM hotels "
            "ORDER BY min(close, stars, cheap) STOP AFTER 5"
        )
        model = CostModel.per_predicate(cs=[1, 1, 1], cr=[0, 0, 0])
        mw = Middleware.over(data, model)
        result = run_query(query, mw, schema=["close", "stars", "cheap"])
        assert_valid_topk(result, data, Min(3), 5)
