"""Tests for the rank-depth SR/G variant."""

import pytest
from hypothesis import given, settings

from repro.core.framework import FrameworkNC
from repro.core.policies import RankDepthPolicy, SelectContext
from repro.core.state import ScoreState
from repro.scoring.functions import Min
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware
from repro.types import Access
from tests.conftest import assert_valid_topk, mw_over
from tests.test_golden_invariant import check, instances


def make_ctx(ds1):
    mw = mw_over(ds1)
    state = ScoreState(mw, Min(2))
    return SelectContext(state=state, middleware=mw, target=2), mw


class TestConstruction:
    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            RankDepthPolicy([-1, 2])

    def test_schedule_validated(self):
        with pytest.raises(ValueError):
            RankDepthPolicy([1, 1], schedule=[0, 0])

    def test_describe(self):
        text = RankDepthPolicy([3, 0], schedule=[1, 0]).describe()
        assert "3,0" in text and "p1,p0" in text


class TestSelect:
    def test_sorted_until_count_reached(self, ds1):
        ctx, mw = make_ctx(ds1)
        policy = RankDepthPolicy([2, 0])
        alts = [Access.sorted(0), Access.random(0, 2)]
        assert policy.select(alts, ctx) == Access.sorted(0)
        mw.sorted_access(0)
        assert policy.select(alts, ctx) == Access.sorted(0)
        mw.sorted_access(0)  # depth now 2: count reached
        assert policy.select(alts, ctx) == Access.random(0, 2)

    def test_zero_depth_goes_straight_to_probes(self, ds1):
        ctx, _ = make_ctx(ds1)
        policy = RankDepthPolicy([0, 0])
        alts = [Access.sorted(0), Access.random(0, 2)]
        assert policy.select(alts, ctx) == Access.random(0, 2)

    def test_probe_schedule_order(self, ds1):
        ctx, _ = make_ctx(ds1)
        policy = RankDepthPolicy([0, 0], schedule=[1, 0])
        alts = [Access.random(0, 2), Access.random(1, 2)]
        assert policy.select(alts, ctx) == Access.random(1, 2)

    def test_completeness_fallback_sorted_only(self, ds1):
        ctx, _ = make_ctx(ds1)
        policy = RankDepthPolicy([0, 0])
        assert policy.select([Access.sorted(1)], ctx) == Access.sorted(1)

    def test_empty_alternatives_rejected(self, ds1):
        ctx, _ = make_ctx(ds1)
        with pytest.raises(ValueError):
            RankDepthPolicy([1, 1]).select([], ctx)


class TestCorrectness:
    def test_exact_answer(self, small_uniform):
        mw = mw_over(small_uniform)
        result = FrameworkNC(
            mw, Min(2), 4, RankDepthPolicy([10, 10])
        ).run()
        assert_valid_topk(result, small_uniform, Min(2), 4)

    @settings(max_examples=40, deadline=None)
    @given(instances())
    def test_golden_invariant(self, instance):
        dataset, fn, k = instance
        mw = Middleware.over(dataset, CostModel.uniform(dataset.m))
        policy = RankDepthPolicy([dataset.n // 2] * dataset.m)
        check(FrameworkNC(mw, fn, k, policy).run(), dataset, fn, k)


class TestEquivalenceWithScoreDepths:
    def test_same_plan_expressible_both_ways(self, medium_uniform):
        """On a fixed database, a score threshold has an equivalent rank
        count: first run with score depths, read the reached depths, then
        replay with those counts -- identical access sequence."""
        from repro.core.policies import SRGPolicy

        fn = Min(3)
        mw_score = Middleware.over(
            medium_uniform, CostModel.uniform(3), record_log=True
        )
        FrameworkNC(mw_score, fn, 5, SRGPolicy([0.7, 0.8, 1.0])).run()
        reached = [mw_score.depth(i) for i in range(3)]

        mw_rank = Middleware.over(
            medium_uniform, CostModel.uniform(3), record_log=True
        )
        FrameworkNC(mw_rank, fn, 5, RankDepthPolicy(reached)).run()
        assert mw_rank.stats.log == mw_score.stats.log
