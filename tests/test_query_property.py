"""Property tests for the query front end: AST <-> text round-trips."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.query.ast import Aggregate, Expr, PredicateRef, WeightedSum
from repro.query.compiler import compile_expression
from repro.query.parser import parse_query

names = st.sampled_from(["rating", "close", "cheap", "stars", "fresh"])


@st.composite
def expressions(draw, depth: int = 2) -> Expr:
    """Random well-formed scoring expressions."""
    if depth == 0:
        return PredicateRef(draw(names))
    choice = draw(st.integers(min_value=0, max_value=2))
    if choice == 0:
        return PredicateRef(draw(names))
    if choice == 1:
        agg = draw(st.sampled_from(Aggregate.SUPPORTED))
        arity = draw(st.integers(min_value=1, max_value=3))
        args = tuple(draw(expressions(depth=depth - 1)) for _ in range(arity))
        return Aggregate(agg, args)
    terms = draw(st.integers(min_value=1, max_value=3))
    raw = [
        round(draw(st.floats(min_value=0.01, max_value=1.0)), 3)
        for _ in range(terms)
    ]
    total = sum(raw)
    weights = [round(w / total / 1.001, 6) for w in raw]  # sums < 1
    parts = tuple(
        (weight, draw(expressions(depth=depth - 1))) for weight in weights
    )
    return WeightedSum(parts)


class TestRoundTripProperty:
    @settings(max_examples=80, deadline=None)
    @given(expressions())
    def test_str_reparses_to_equivalent_expression(self, expr):
        """str(expr) -> parse -> same predicates and same values on a grid
        of environments."""
        text = f"SELECT * FROM r ORDER BY {expr} STOP AFTER 1"
        reparsed = parse_query(text).expr
        assert reparsed.predicates() == expr.predicates()
        rng = np.random.default_rng(0)
        for _ in range(5):
            env = {name: float(rng.random()) for name in expr.predicates()}
            assert reparsed.evaluate(env) == pytest.approx(
                expr.evaluate(env), abs=1e-9
            )

    @settings(max_examples=50, deadline=None)
    @given(expressions())
    def test_compiled_function_is_monotone_and_bounded(self, expr):
        fn, order = compile_expression(expr)
        rng = np.random.default_rng(1)
        for _ in range(10):
            lo = rng.random(len(order))
            hi = np.clip(lo + rng.random(len(order)) * (1 - lo), 0, 1)
            v_lo, v_hi = fn(list(lo)), fn(list(hi))
            assert v_lo <= v_hi + 1e-9
            assert -1e-9 <= v_lo <= 1.0 + 1e-9
            assert -1e-9 <= v_hi <= 1.0 + 1e-9
