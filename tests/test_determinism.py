"""Determinism and contract properties across the stack.

Reproducibility is a stated guarantee (CONTRIBUTING.md): identical
inputs must yield identical access sequences, plans and serializations.
These properties also pin the policy contract (always return an offered
access) under arbitrary choice sets.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.framework import FrameworkNC
from repro.core.policies import RandomPolicy, RankDepthPolicy, SRGPolicy, SelectContext
from repro.core.state import ScoreState
from repro.data.dataset import Dataset
from repro.optimizer.estimator import CostEstimator
from repro.optimizer.optimizer import NCOptimizer
from repro.optimizer.plan import SRGPlan
from repro.optimizer.sampling import dummy_uniform_sample
from repro.optimizer.search import HillClimb
from repro.scoring.functions import Avg, Min
from repro.serialization import plan_from_json, plan_to_json
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware
from repro.types import Access
from tests.conftest import mw_over

score_value = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32)


class TestRunDeterminism:
    @pytest.mark.parametrize(
        "policy_factory",
        [
            lambda: SRGPolicy([0.6, 0.8], schedule=[1, 0]),
            lambda: RankDepthPolicy([7, 2]),
            lambda: RandomPolicy(seed=13),
        ],
        ids=["srg", "rank", "random"],
    )
    def test_identical_runs_identical_logs(self, small_uniform, policy_factory):
        def one_log():
            mw = mw_over(small_uniform, record_log=True)
            FrameworkNC(mw, Min(2), 4, policy_factory()).run()
            return mw.stats.log

        assert one_log() == one_log()

    def test_optimizer_is_deterministic(self):
        def one_plan():
            return NCOptimizer(scheme=HillClimb(restarts=2, seed=4)).plan(
                dummy_uniform_sample(2, 80, seed=3),
                Min(2),
                5,
                800,
                CostModel.expensive_random(2),
            )

        a, b = one_plan(), one_plan()
        assert a == b
        assert plan_to_json(a) == plan_to_json(b)


class TestPolicyContractProperty:
    @settings(max_examples=80, deadline=None)
    @given(st.data())
    def test_policies_always_return_an_offered_access(self, data):
        ds = Dataset(np.array([[0.5, 0.6], [0.3, 0.9]]))
        mw = mw_over(ds)
        state = ScoreState(mw, Min(2))
        ctx = SelectContext(state=state, middleware=mw, target=1)
        # Arbitrary nonempty choice sets out of the legal access vocabulary.
        vocabulary = [
            Access.sorted(0),
            Access.sorted(1),
            Access.random(0, 1),
            Access.random(1, 1),
        ]
        alternatives = data.draw(
            st.lists(st.sampled_from(vocabulary), min_size=1, max_size=4, unique=True)
        )
        d0 = data.draw(st.floats(min_value=0, max_value=1))
        d1 = data.draw(st.floats(min_value=0, max_value=1))
        for policy in (
            SRGPolicy([d0, d1]),
            RankDepthPolicy([data.draw(st.integers(0, 3))] * 2),
            RandomPolicy(seed=data.draw(st.integers(0, 5))),
        ):
            assert policy.select(alternatives, ctx) in alternatives


class TestSerializationProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(score_value, min_size=1, max_size=5),
        st.data(),
    )
    def test_plan_json_round_trip(self, depths, data):
        m = len(depths)
        schedule = data.draw(st.permutations(range(m)))
        plan = SRGPlan(
            depths=tuple(depths),
            schedule=tuple(schedule),
            estimated_cost=data.draw(
                st.one_of(st.none(), st.floats(min_value=0, max_value=1e9))
            ),
            estimator_runs=data.draw(st.integers(min_value=0, max_value=10**6)),
        )
        assert plan_from_json(plan_to_json(plan)) == plan


class TestEstimatorCacheProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1, allow_nan=False),
                st.floats(min_value=0, max_value=1, allow_nan=False),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_repeated_estimates_stable_and_cached(self, points):
        sample = dummy_uniform_sample(2, 60, seed=9)
        est = CostEstimator(sample, Avg(2), 5, 600, CostModel.uniform(2))
        first = [est.estimate(p) for p in points]
        runs_after_first = est.runs
        second = [est.estimate(p) for p in points]
        assert first == second
        assert est.runs == runs_after_first  # cache absorbed the repeats
        assert est.runs == len({est._key(p, (0, 1)) for p in points})
