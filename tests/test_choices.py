"""Tests for necessary choices (Definition 2)."""

import pytest

from repro.core.choices import necessary_choices
from repro.core.state import ScoreState
from repro.core.tasks import UNSEEN
from repro.exceptions import UnanswerableQueryError
from repro.scoring.functions import Min
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware
from repro.types import Access
from tests.conftest import mw_over


def fresh(ds1, cost_model=None, **kwargs):
    mw = mw_over(ds1, cost_model, **kwargs)
    return mw, ScoreState(mw, Min(2))


class TestRealObjects:
    def test_all_accesses_for_untouched_object(self, ds1):
        mw, state = fresh(ds1)
        obj, score = mw.sorted_access(0)
        state.record(0, obj, score)
        choices = necessary_choices(state, obj)
        # p0 is determined; only p1's accesses remain.
        assert choices == [Access.sorted(1), Access.random(1, obj)]

    def test_example8_choice_set(self, ds1):
        """Example 8: for u3 with p1 undetermined, N = {sa_2, ra_2(u3)}."""
        mw, state = fresh(ds1)
        obj, score = mw.sorted_access(0)  # u3 (object 2)
        state.record(0, obj, score)
        assert obj == 2
        choices = set(necessary_choices(state, 2))
        assert choices == {Access.sorted(1), Access.random(1, 2)}

    def test_complete_object_rejected(self, ds1):
        mw, state = fresh(ds1)
        obj, score = mw.sorted_access(0)
        state.record(0, obj, score)
        state.record(1, obj, mw.random_access(1, obj))
        with pytest.raises(ValueError):
            necessary_choices(state, obj)

    def test_no_sorted_capability_leaves_probe_only(self, ds1):
        model = CostModel((1.0, float("inf")), (1.0, 1.0))
        mw, state = fresh(ds1, model)
        obj, score = mw.sorted_access(0)
        state.record(0, obj, score)
        assert necessary_choices(state, obj) == [Access.random(1, obj)]

    def test_no_random_capability_leaves_sorted_only(self, ds1):
        model = CostModel.no_random(2)
        mw, state = fresh(ds1, model)
        obj, score = mw.sorted_access(0)
        state.record(0, obj, score)
        assert necessary_choices(state, obj) == [Access.sorted(1)]

    def test_multiple_undetermined_predicates(self, ds1):
        mw, state = fresh(ds1)
        obj, score = mw.sorted_access(0)
        state.record(0, obj, score)
        # Forget p0 by inspecting a different object seen via p1.
        obj2, score2 = mw.sorted_access(1)
        state.record(1, obj2, score2)
        if obj2 != obj:
            choices = necessary_choices(state, obj2)
            assert Access.sorted(0) in choices
            assert Access.random(0, obj2) in choices


class TestUnseenObject:
    def test_only_live_sorted_accesses(self, ds1):
        mw, state = fresh(ds1)
        choices = necessary_choices(state, UNSEEN)
        assert choices == [Access.sorted(0), Access.sorted(1)]

    def test_exhausted_lists_excluded(self, ds1):
        mw, state = fresh(ds1)
        while not mw.exhausted(0):
            obj, score = mw.sorted_access(0)
            state.record(0, obj, score)
        # All objects are now seen; but if UNSEEN were still consulted, p0
        # would no longer be offered.
        choices = necessary_choices(state, UNSEEN)
        assert choices == [Access.sorted(1)]

    def test_no_sorted_at_all_is_unanswerable(self, ds1):
        model = CostModel.no_sorted(2)
        mw = Middleware.over(ds1, model, no_wild_guesses=False)
        state = ScoreState(mw, Min(2))
        with pytest.raises(UnanswerableQueryError):
            necessary_choices(state, UNSEEN)


class TestCompleteness:
    def test_choices_are_exactly_the_contributing_accesses(self, ds1):
        """Definition 2: all and only accesses on undetermined predicates."""
        mw, state = fresh(ds1)
        obj, score = mw.sorted_access(0)
        state.record(0, obj, score)
        choices = necessary_choices(state, obj)
        for access in choices:
            assert access.predicate in state.undetermined(obj)
            if access.is_random:
                assert access.obj == obj
        undetermined = set(state.undetermined(obj))
        covered = {access.predicate for access in choices}
        assert covered == undetermined
