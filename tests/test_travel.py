"""Tests for the reconstructed travel-agent benchmark data."""

import numpy as np
import pytest

from repro.data.travel import hotels_dataset, restaurants_dataset


class TestRestaurants:
    def test_shape(self):
        ds = restaurants_dataset(500, seed=1)
        assert ds.n == 500
        assert ds.m == 2  # (rating, close)

    def test_deterministic(self):
        a = restaurants_dataset(100, seed=4)
        b = restaurants_dataset(100, seed=4)
        assert np.array_equal(a.matrix, b.matrix)

    def test_scores_in_unit_interval(self):
        ds = restaurants_dataset(500, seed=1)
        assert ds.matrix.min() >= 0.0
        assert ds.matrix.max() <= 1.0

    def test_ratings_are_banded(self):
        ds = restaurants_dataset(3000, seed=1)
        # Ratings come in half-star bands plus tiny jitter: the empirical
        # distribution is strongly multimodal, unlike proximity scores.
        hist, _ = np.histogram(ds.column(0), bins=50)
        assert (hist == 0).sum() > 5

    def test_ratings_skew_high(self):
        ds = restaurants_dataset(3000, seed=1)
        assert ds.column(0).mean() > 0.55


class TestHotels:
    def test_shape(self):
        ds = hotels_dataset(500, seed=2)
        assert ds.n == 500
        assert ds.m == 3  # (close, stars, cheap)

    def test_deterministic(self):
        a = hotels_dataset(100, seed=9)
        b = hotels_dataset(100, seed=9)
        assert np.array_equal(a.matrix, b.matrix)

    def test_stars_and_cheap_anticorrelated(self):
        ds = hotels_dataset(3000, seed=2)
        r = np.corrcoef(ds.column(1), ds.column(2))[0, 1]
        assert r < -0.1  # pricier hotels have more stars

    def test_scores_in_unit_interval(self):
        ds = hotels_dataset(500, seed=2)
        assert ds.matrix.min() >= 0.0
        assert ds.matrix.max() <= 1.0
