"""Tests for the query tokenizer."""

import pytest

from repro.query.ast import QueryError
from repro.query.lexer import Token, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def texts(text):
    return [t.text for t in tokenize(text)]


class TestTokenize:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT Select select")
        assert all(t.kind == "keyword" and t.text == "select" for t in tokens[:-1])

    def test_identifiers_preserved(self):
        assert texts("rating Close_2")[:2] == ["rating", "Close_2"]
        assert kinds("rating")[:1] == ["ident"]

    def test_numbers(self):
        assert texts("5 0.3 .5")[:3] == ["5", "0.3", ".5"]
        assert kinds("0.3")[0] == "number"

    def test_punctuation(self):
        assert kinds("( ) , * +")[:5] == [
            "lparen",
            "rparen",
            "comma",
            "star",
            "plus",
        ]

    def test_eof_appended(self):
        assert tokenize("x")[-1].kind == "eof"
        assert tokenize("")[:] == [Token("eof", "", 0)]

    def test_positions_recorded(self):
        tokens = tokenize("select x")
        assert tokens[0].position == 0
        assert tokens[1].position == 7

    def test_foreign_character_rejected(self):
        with pytest.raises(QueryError, match="unexpected character"):
            tokenize("select @ from r")

    def test_keyword_prefix_is_identifier(self):
        # "selector" must not lex as the keyword "select" + "or".
        tokens = tokenize("selector")
        assert tokens[0].kind == "ident"
        assert tokens[0].text == "selector"

    def test_whitespace_insensitive(self):
        assert kinds("min( a , b )") == kinds("min(a,b)")

    def test_iter_tokens_matches_tokenize(self):
        from repro.query.lexer import iter_tokens

        text = "select x from r order by min(a, b) limit 2"
        assert list(iter_tokens(text)) == tokenize(text)
