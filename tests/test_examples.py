"""Smoke tests: every example script runs end to end and prints sanely.

Examples are the repository's public face; a refactor that silently
breaks one should fail CI, not a reader. Each example module is imported
fresh and its ``main()`` executed with stdout captured.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart", capsys)
        assert "Dataset 1" in out
        assert "Figure 7 trace" in out
        assert "sa_0" in out and "ra_1(2)" in out
        assert "u3 with score 0.70" in out

    def test_travel_agent(self, capsys):
        out = run_example("travel_agent", capsys)
        assert "Q1" in out and "Q2" in out
        assert "optimizer chose" in out
        assert "% of best" in out

    def test_adaptive_middleware(self, capsys):
        out = run_example("adaptive_middleware", capsys)
        assert "probe spike" in out
        assert "sorted outage" in out
        assert "infeasible" in out

    def test_capability_matrix(self, capsys):
        out = run_example("capability_matrix", capsys)
        for cell in ("uniform", "expensive-ra", "no-ra", "no-sa", "zero-ra"):
            assert cell in out
        assert "WRONG" not in out

    def test_plan_anatomy(self, capsys):
        out = run_example("plan_anatomy", capsys)
        assert "optimizer's pick" in out
        assert "offline-optimal plan" in out
        assert "phases:" in out

    def test_progressive_results(self, capsys):
        out = run_example("progressive_results", capsys)
        assert "streaming answers" in out
        assert "more results" in out
        assert "theta sweep" in out

    def test_sql_queries(self, capsys):
        out = run_example("sql_queries", capsys)
        assert "min(rating, close)" in out
        assert "scenario B (cr = 0)" in out
        assert "total access cost" in out
