"""Tests for global schedule (H) optimization."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.exceptions import OptimizationError
from repro.optimizer.estimator import CostEstimator
from repro.optimizer.sampling import dummy_uniform_sample
from repro.optimizer.schedule import ScheduleOptimizer, benefit_cost_schedule
from repro.scoring.functions import Min
from repro.sources.cost import CostModel


def skewed_sample(n=100, seed=0) -> Dataset:
    """p0 scores high (weak pruner), p1 scores low (strong pruner)."""
    rng = np.random.default_rng(seed)
    p0 = 0.5 + rng.random(n) * 0.5
    p1 = rng.random(n) ** 3
    return Dataset(np.column_stack([p0, p1]))


class TestBenefitCostSchedule:
    def test_selective_predicate_first(self):
        order = benefit_cost_schedule(skewed_sample(), CostModel.uniform(2))
        assert order == (1, 0)

    def test_cost_tips_the_ranking(self):
        # p1 prunes better but costs 100x: benefit/cost favours p0.
        model = CostModel.per_predicate(cs=[1, 1], cr=[1.0, 100.0])
        order = benefit_cost_schedule(skewed_sample(), model)
        assert order == (0, 1)

    def test_free_probes_first(self):
        model = CostModel.per_predicate(cs=[1, 1], cr=[1.0, 0.0])
        order = benefit_cost_schedule(skewed_sample(), model)
        assert order[0] == 1

    def test_unsupported_probes_last(self):
        model = CostModel.per_predicate(
            cs=[1, 1, 1], cr=[float("inf"), 1.0, 1.0]
        )
        sample = dummy_uniform_sample(3, 50, seed=1)
        order = benefit_cost_schedule(sample, model)
        assert order[-1] == 0

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            benefit_cost_schedule(skewed_sample(), CostModel.uniform(3))

    def test_is_a_permutation(self):
        sample = dummy_uniform_sample(4, 50, seed=2)
        order = benefit_cost_schedule(sample, CostModel.uniform(4))
        assert sorted(order) == [0, 1, 2, 3]


class TestScheduleOptimizer:
    def test_heuristic_matches_closed_form(self):
        sample = skewed_sample()
        est = CostEstimator(sample, Min(2), 5, 1000, CostModel.uniform(2))
        opt = ScheduleOptimizer(mode="heuristic")
        assert opt.optimize(est, [1.0, 1.0]) == benefit_cost_schedule(
            sample, CostModel.uniform(2)
        )

    def test_exhaustive_finds_cheapest_permutation(self):
        sample = skewed_sample()
        est = CostEstimator(sample, Min(2), 5, 1000, CostModel.no_sorted(2), no_wild_guesses=False)
        opt = ScheduleOptimizer(mode="exhaustive")
        best = opt.optimize(est, [1.0, 1.0])
        costs = {
            perm: est.estimate([1.0, 1.0], perm)
            for perm in [(0, 1), (1, 0)]
        }
        assert costs[best] == min(costs.values())

    def test_exhaustive_guard(self):
        sample = dummy_uniform_sample(7, 20, seed=0)
        est = CostEstimator(sample, Min(7), 1, 100, CostModel.uniform(7))
        with pytest.raises(OptimizationError):
            ScheduleOptimizer(mode="exhaustive", max_exhaustive_m=5).optimize(
                est, [1.0] * 7
            )

    def test_unknown_mode(self):
        with pytest.raises(OptimizationError):
            ScheduleOptimizer(mode="magic")
