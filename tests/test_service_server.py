"""The query server: sessions, admission, budgets, protocol, CLI."""

import io
import json
import sys

import pytest

from repro.cli import main
from repro.data.generators import uniform
from repro.exceptions import ReproError, ServiceOverloadError
from repro.query.ast import QueryError
from repro.service import (
    QueryServer,
    ServerConfig,
    handle_request,
    serve_stream,
)
from repro.sources.cost import CostModel

MIN_Q = "SELECT * FROM r ORDER BY min(a, b) STOP AFTER 5"
AVG_Q = "SELECT * FROM r ORDER BY avg(a, b) STOP AFTER 5"


def make_server(**config_kwargs) -> QueryServer:
    data = uniform(300, 2, seed=3)
    model = CostModel.uniform(2, cs=1.0, cr=2.0)
    return QueryServer(
        model,
        dataset=data,
        schema=["a", "b"],
        config=ServerConfig(**config_kwargs),
    )


class TestSessions:
    def test_warm_repeat_charges_nothing_and_answers_identically(self):
        server = make_server()
        cold = server.query(MIN_Q)
        warm = server.query(MIN_Q)
        assert cold.status == "done" and warm.status == "done"
        assert warm.charged_cost == 0.0
        assert warm.cache_hits > 0
        assert [e.obj for e in warm.result.ranking] == [
            e.obj for e in cold.result.ranking
        ]
        assert [e.score for e in warm.result.ranking] == [
            e.score for e in cold.result.ranking
        ]

    def test_related_query_is_cheaper_warm(self):
        warm_server = make_server()
        warm_server.query(MIN_Q)
        warm = warm_server.query(AVG_Q)

        cold_server = make_server()
        cold = cold_server.query(AVG_Q)

        assert warm.charged_cost < cold.charged_cost
        assert [e.obj for e in warm.result.ranking] == [
            e.obj for e in cold.result.ranking
        ]

    def test_fifo_execution_order_is_retrieval_independent(self):
        in_order = make_server(max_in_flight=4)
        a1 = in_order.submit(MIN_Q)
        b1 = in_order.submit(AVG_Q)
        ra1 = in_order.result(a1)
        rb1 = in_order.result(b1)

        reversed_order = make_server(max_in_flight=4)
        a2 = reversed_order.submit(MIN_Q)
        b2 = reversed_order.submit(AVG_Q)
        rb2 = reversed_order.result(b2)  # demanded first; still runs second
        ra2 = reversed_order.result(a2)

        assert ra1.charged_cost == ra2.charged_cost
        assert rb1.charged_cost == rb2.charged_cost
        assert [e.obj for e in rb1.result.ranking] == [
            e.obj for e in rb2.result.ranking
        ]

    def test_session_ids_are_seed_deterministic(self):
        ids_a = [make_server(seed=42).submit(MIN_Q) for _ in range(1)]
        ids_b = [make_server(seed=42).submit(MIN_Q) for _ in range(1)]
        assert ids_a == ids_b
        assert make_server(seed=1).submit(MIN_Q) != ids_a[0]

    def test_unknown_predicate_rejected_at_submit(self):
        server = make_server()
        with pytest.raises(QueryError, match="not in the served schema"):
            server.submit("SELECT * FROM r ORDER BY min(a, zz) STOP AFTER 2")
        assert server.open_sessions == 0

    def test_unknown_session_id(self):
        server = make_server()
        with pytest.raises(ReproError, match="unknown session"):
            server.result("q000042-deadbeef")


class TestAdmission:
    def test_overload_rejected_and_slot_freed_on_retrieval(self):
        server = make_server(max_in_flight=2)
        first = server.submit(MIN_Q)
        server.submit(AVG_Q)
        with pytest.raises(ServiceOverloadError):
            server.submit(MIN_Q)
        assert server.stats()["rejected"] == 1
        server.result(first)  # frees a slot
        third = server.submit(MIN_Q)
        assert server.result(third).status == "done"

    def test_failed_sessions_occupy_slots_until_retrieved(self):
        server = make_server(max_in_flight=1, degrade_on_budget=False)
        sid = server.submit(MIN_Q, budget=0.5)
        session = server.result(sid)
        assert session.status == "failed"
        assert session.error_type == "BudgetExceededError"
        # Retrieval freed the slot even though the query failed.
        assert server.open_sessions == 0
        assert server.submit(MIN_Q)


class TestBudgets:
    def test_budget_degrades_to_partial_by_default(self):
        server = make_server()
        full = server.query(MIN_Q)
        tight_server = make_server()
        tight = tight_server.query(MIN_Q, budget=full.charged_cost / 3)
        assert tight.status == "done"
        assert tight.result.partial
        assert tight.result.metadata["budget_exhausted"] is True
        assert tight.charged_cost <= full.charged_cost / 3
        assert tight.result.uncertainty  # proven intervals reported

    def test_warm_cache_rescues_a_tight_budget(self):
        server = make_server()
        full = server.query(MIN_Q)
        assert full.result.partial is False
        # The same budget that degrades a cold run is ample when warm.
        rescued = server.query(MIN_Q, budget=full.charged_cost / 3)
        assert rescued.status == "done"
        assert rescued.result.partial is False
        assert rescued.charged_cost == 0.0

    def test_default_budget_from_config(self):
        server = make_server(default_budget=2.0)
        session = server.query(MIN_Q)
        assert session.charged_cost <= 2.0
        assert session.result.partial


class TestParallelServing:
    def test_concurrency_uses_wave_executor(self):
        server = make_server(query_concurrency=4)
        cold = server.query(MIN_Q)
        assert cold.status == "done"
        assert cold.result.metadata["concurrency"] == 4
        warm = server.query(MIN_Q)
        assert warm.charged_cost == 0.0
        assert [e.obj for e in warm.result.ranking] == [
            e.obj for e in cold.result.ranking
        ]


class TestStats:
    def test_snapshot_shape(self):
        server = make_server()
        server.query(MIN_Q)
        server.query(MIN_Q)
        snap = server.stats()
        assert snap["submitted"] == 2
        assert snap["completed"] == 2
        assert snap["failed"] == 0
        assert snap["open"] == 0
        assert snap["charged_cost_total"] > 0
        assert snap["cache"]["hit_rate"] > 0
        assert snap["schema"] == ["a", "b"]
        json.dumps(snap)  # JSON-safe throughout


class TestProtocol:
    def test_submit_result_roundtrip(self):
        server = make_server()
        submitted = handle_request(server, {"op": "submit", "query": MIN_Q})
        assert submitted["ok"]
        result = handle_request(
            server, {"op": "result", "session": submitted["session"]}
        )
        assert result["ok"]
        assert result["result"]["ranking"]
        assert result["charged_cost"] > 0
        assert result["partial"] is False
        repeat = handle_request(server, {"op": "submit", "query": MIN_Q})
        warm = handle_request(
            server, {"op": "result", "session": repeat["session"]}
        )
        assert warm["charged_cost"] == 0.0
        assert warm["cache_hits"] > 0
        assert warm["result"]["ranking"] == result["result"]["ranking"]

    def test_errors_are_responses_not_crashes(self):
        server = make_server(max_in_flight=1)
        assert not handle_request(server, ["not", "a", "dict"])["ok"]
        assert not handle_request(server, {"op": "bogus"})["ok"]
        assert not handle_request(server, {"op": "submit"})["ok"]
        assert not handle_request(server, {"op": "result"})["ok"]
        bad = handle_request(
            server, {"op": "submit", "query": "SELECT nonsense"}
        )
        assert not bad["ok"] and bad["type"] == "QueryError"
        handle_request(server, {"op": "submit", "query": MIN_Q})
        overload = handle_request(server, {"op": "submit", "query": MIN_Q})
        assert not overload["ok"]
        assert overload["type"] == "ServiceOverloadError"

    def test_failed_session_reported_with_type(self):
        server = make_server(degrade_on_budget=False)
        sid = server.submit(MIN_Q, budget=0.5)
        response = handle_request(server, {"op": "result", "session": sid})
        assert not response["ok"]
        assert response["type"] == "BudgetExceededError"
        assert response["session"] == sid

    def test_serve_stream_shutdown_and_bad_json(self):
        server = make_server()
        lines = io.StringIO(
            "\n".join(
                [
                    json.dumps({"op": "submit", "query": MIN_Q}),
                    "",  # blank lines ignored
                    "{not json",
                    json.dumps({"op": "stats"}),
                    json.dumps({"op": "shutdown"}),
                    json.dumps({"op": "stats"}),  # never reached
                ]
            )
            + "\n"
        )
        out = io.StringIO()
        assert serve_stream(server, lines, out) is True
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert len(responses) == 4  # blank skipped, stop after shutdown
        assert responses[0]["ok"]
        assert not responses[1]["ok"] and "bad JSON" in responses[1]["error"]
        assert responses[2]["ok"] and responses[3]["op"] == "shutdown"

    def test_serve_stream_eof_is_not_shutdown(self):
        server = make_server()
        out = io.StringIO()
        assert serve_stream(server, io.StringIO(""), out) is False


class TestServeCli:
    def run_serve(self, monkeypatch, capsys, requests, extra_args=()):
        stdin = io.StringIO(
            "\n".join(json.dumps(r) for r in requests) + "\n"
        )
        monkeypatch.setattr(sys, "stdin", stdin)
        code = main(
            ["serve", "--n", "200", "--seed", "7", "--schema", "a,b", *extra_args]
        )
        captured = capsys.readouterr()
        return code, [json.loads(line) for line in captured.out.splitlines()], captured.err

    def test_scripted_batch_over_stdio(self, monkeypatch, capsys):
        code, responses, err = self.run_serve(
            monkeypatch,
            capsys,
            [
                {"op": "submit", "query": MIN_Q},
                {"op": "stats"},
                {"op": "shutdown"},
            ],
        )
        assert code == 0
        assert [r["op"] for r in responses] == ["submit", "stats", "shutdown"]
        assert all(r["ok"] for r in responses)
        assert "served" in err

    def test_unretrieved_sessions_stay_queued(self, monkeypatch, capsys):
        submit = {"op": "submit", "query": MIN_Q}
        code, responses, _err = self.run_serve(
            monkeypatch,
            capsys,
            [submit, submit, {"op": "stats"}, {"op": "shutdown"}],
        )
        assert code == 0
        # Results were never demanded, so the queries stayed queued.
        assert responses[2]["stats"]["queued"] == 2

    def test_cli_rejects_empty_schema(self, monkeypatch, capsys):
        monkeypatch.setattr(sys, "stdin", io.StringIO(""))
        assert main(["serve", "--schema", ","]) == 2
        assert "at least one predicate" in capsys.readouterr().err

    def test_cli_full_roundtrip_with_results(self, monkeypatch, capsys):
        # Two-phase: discover the session id format deterministically by
        # running the same seeded server in-process first.
        data = uniform(200, 2, seed=7)
        model = CostModel.uniform(2)
        probe = QueryServer(
            model, dataset=data, schema=["a", "b"], config=ServerConfig(seed=7)
        )
        sid1 = probe.submit(MIN_Q)
        sid2 = probe.submit(MIN_Q)
        code, responses, err = self.run_serve(
            monkeypatch,
            capsys,
            [
                {"op": "submit", "query": MIN_Q},
                {"op": "submit", "query": MIN_Q},
                {"op": "result", "session": sid1},
                {"op": "result", "session": sid2},
                {"op": "stats"},
                {"op": "shutdown"},
            ],
        )
        assert code == 0
        cold, warm = responses[2], responses[3]
        assert cold["ok"] and warm["ok"]
        assert warm["charged_cost"] == 0.0
        assert warm["result"]["ranking"] == cold["result"]["ranking"]
        assert responses[4]["stats"]["cache"]["hit_rate"] > 0
