"""Tests for sampling and the simulation-based cost estimator."""

import pytest

from repro.data.generators import uniform, zipf_skewed
from repro.optimizer.estimator import CostEstimator
from repro.optimizer.sampling import dummy_uniform_sample, sample_from_dataset
from repro.scoring.functions import Avg, Min
from repro.sources.cost import CostModel


class TestSampling:
    def test_dummy_shape(self):
        sample = dummy_uniform_sample(3, 40, seed=1)
        assert sample.n == 40
        assert sample.m == 3

    def test_dummy_deterministic(self):
        import numpy as np

        a = dummy_uniform_sample(2, 10, seed=5)
        b = dummy_uniform_sample(2, 10, seed=5)
        assert np.array_equal(a.matrix, b.matrix)

    def test_dummy_validation(self):
        with pytest.raises(ValueError):
            dummy_uniform_sample(0, 10)
        with pytest.raises(ValueError):
            dummy_uniform_sample(2, 0)

    def test_true_sample_rows_from_dataset(self):
        data = uniform(50, 2, seed=2)
        sample = sample_from_dataset(data, 10, seed=3)
        originals = {tuple(row) for row in data.matrix}
        assert all(tuple(row) in originals for row in sample.matrix)


class TestEstimatorScaling:
    def test_sample_k_proportional(self):
        sample = dummy_uniform_sample(2, 100, seed=0)
        est = CostEstimator(sample, Min(2), 50, 1000, CostModel.uniform(2))
        assert est.sample_k == 5
        assert est.scale == pytest.approx(10.0)

    def test_sample_k_at_least_one(self):
        sample = dummy_uniform_sample(2, 10, seed=0)
        est = CostEstimator(sample, Min(2), 1, 100000, CostModel.uniform(2))
        assert est.sample_k == 1

    def test_estimate_is_scaled_sample_cost(self):
        data = uniform(100, 2, seed=4)
        est = CostEstimator(data, Min(2), 5, 1000, CostModel.uniform(2))
        # The sample *is* a dataset: running the plan directly on it must
        # give exactly estimate / scale.
        from repro.core.framework import FrameworkNC
        from repro.core.policies import SRGPolicy
        from repro.sources.middleware import Middleware

        mw = Middleware.over(data, CostModel.uniform(2))
        FrameworkNC(mw, Min(2), 1, SRGPolicy([0.5, 0.5])).run()
        assert est.estimate([0.5, 0.5]) == pytest.approx(
            mw.stats.total_cost() * 10.0
        )


class TestEstimatorCaching:
    def test_repeat_queries_hit_cache(self):
        sample = dummy_uniform_sample(2, 50, seed=0)
        est = CostEstimator(sample, Avg(2), 5, 500, CostModel.uniform(2))
        a = est.estimate([0.5, 0.5])
        runs_after_first = est.runs
        b = est.estimate([0.5, 0.5])
        assert a == b
        assert est.runs == runs_after_first == 1

    def test_distinct_schedules_are_distinct_keys(self):
        sample = dummy_uniform_sample(2, 50, seed=0)
        est = CostEstimator(sample, Min(2), 5, 500, CostModel.uniform(2))
        est.estimate([1.0, 1.0], schedule=(0, 1))
        est.estimate([1.0, 1.0], schedule=(1, 0))
        assert est.runs == 2

    def test_close_depths_are_distinct_keys(self):
        # Regression: keys used to round depths to 6 digits, colliding
        # distinct fine-step hill-climb depths into one memo entry and
        # silently returning the wrong plan's cost. Keys are now exact.
        sample = dummy_uniform_sample(2, 50, seed=0)
        est = CostEstimator(sample, Min(2), 5, 500, CostModel.uniform(2))
        est.estimate([0.5, 0.5])
        est.estimate([0.5 + 1e-9, 0.5])
        assert est.runs == 2
        # ... while bitwise-equal depths still share one entry.
        est.estimate([0.5, 0.5])
        assert est.runs == 2

    def test_cache_is_bounded_lru(self):
        sample = dummy_uniform_sample(2, 30, seed=0)
        est = CostEstimator(
            sample, Min(2), 5, 300, CostModel.uniform(2), cache_size=2
        )
        est.estimate([0.1, 0.1])
        est.estimate([0.2, 0.2])
        est.estimate([0.1, 0.1])  # refresh recency of the first entry
        est.estimate([0.3, 0.3])  # evicts [0.2, 0.2], not [0.1, 0.1]
        assert est.cache_info()["size"] == 2
        runs = est.runs
        est.estimate([0.1, 0.1])
        assert est.runs == runs  # still cached
        est.estimate([0.2, 0.2])
        assert est.runs == runs + 1  # was evicted, re-simulated

    def test_hit_miss_counters(self):
        sample = dummy_uniform_sample(2, 30, seed=0)
        est = CostEstimator(sample, Min(2), 5, 300, CostModel.uniform(2))
        est.estimate([0.5, 0.5])
        est.estimate([0.5, 0.5])
        est.estimate([0.4, 0.4])
        assert est.cache_hits == 1
        assert est.cache_misses == 2
        info = est.cache_info()
        assert info["hits"] == 1 and info["misses"] == 2
        assert info["size"] == 2

    def test_estimate_many_matches_serial_loop(self):
        sample = dummy_uniform_sample(2, 50, seed=0)
        plans = [(0.0, 0.0), (0.5, 0.5), (1.0, 1.0), (0.5, 0.5)]
        serial = CostEstimator(sample, Avg(2), 5, 500, CostModel.uniform(2))
        batched = CostEstimator(sample, Avg(2), 5, 500, CostModel.uniform(2))
        expected = [serial.estimate(p) for p in plans]
        got = batched.estimate_many(plans)
        assert got == expected
        assert batched.runs == serial.runs == 3
        assert batched.cache_hits == serial.cache_hits == 1


class TestEstimatorFidelity:
    def test_relative_order_of_plans_predicted(self):
        """The estimator's reason for existing: on a same-distribution
        sample it must rank plan costs like the full database does."""
        data = uniform(2000, 2, seed=6)
        fn = Min(2)
        model = CostModel.expensive_random(2, ratio=10.0)
        sample = sample_from_dataset(data, 200, seed=7)
        est = CostEstimator(sample, fn, 10, data.n, model)

        from repro.core.framework import FrameworkNC
        from repro.core.policies import SRGPolicy
        from repro.sources.middleware import Middleware

        def true_cost(depths):
            mw = Middleware.over(data, model)
            FrameworkNC(mw, fn, 10, SRGPolicy(depths)).run()
            return mw.stats.total_cost()

        plans = [(1.0, 1.0), (0.7, 0.7), (0.0, 0.0)]
        estimated = [est.estimate(p) for p in plans]
        actual = [true_cost(p) for p in plans]
        est_order = sorted(range(3), key=lambda i: estimated[i])
        true_order = sorted(range(3), key=lambda i: actual[i])
        assert est_order == true_order

    def test_estimate_within_factor_on_true_sample(self):
        data = zipf_skewed(2000, 2, skew=2.0, seed=8)
        fn = Avg(2)
        model = CostModel.uniform(2)
        sample = sample_from_dataset(data, 200, seed=9)
        est = CostEstimator(sample, fn, 10, data.n, model)

        from repro.core.framework import FrameworkNC
        from repro.core.policies import SRGPolicy
        from repro.sources.middleware import Middleware

        mw = Middleware.over(data, model)
        FrameworkNC(mw, fn, 10, SRGPolicy([0.8, 0.8])).run()
        actual = mw.stats.total_cost()
        estimated = est.estimate([0.8, 0.8])
        assert actual / 4 <= estimated <= actual * 4


class TestEstimatorValidation:
    def test_width_mismatch(self):
        sample = dummy_uniform_sample(2, 10, seed=0)
        with pytest.raises(ValueError):
            CostEstimator(sample, Min(2), 1, 100, CostModel.uniform(3))
        with pytest.raises(ValueError):
            CostEstimator(sample, Min(3), 1, 100, CostModel.uniform(2))

    def test_k_and_n_validated(self):
        sample = dummy_uniform_sample(2, 10, seed=0)
        with pytest.raises(ValueError):
            CostEstimator(sample, Min(2), 0, 100, CostModel.uniform(2))
        with pytest.raises(ValueError):
            CostEstimator(sample, Min(2), 1, 0, CostModel.uniform(2))
