"""Tests for the Delta-search schemes (Naive, Strategies, HClimb)."""

import pytest

from repro.exceptions import OptimizationError
from repro.optimizer.estimator import CostEstimator
from repro.optimizer.sampling import dummy_uniform_sample
from repro.optimizer.search import HillClimb, NaiveGrid, Strategies
from repro.scoring.functions import Avg, Min
from repro.sources.cost import CostModel


def make_estimator(fn=None, model=None, m=2, size=80, k=5, n=800):
    sample = dummy_uniform_sample(m, size, seed=1)
    return CostEstimator(
        sample, fn or Min(m), k, n, model or CostModel.uniform(m)
    )


class TestNaiveGrid:
    def test_finds_grid_optimum(self):
        est = make_estimator()
        result = NaiveGrid(resolution=4).search(est)
        # The result must be the best of all 16 grid points by definition.
        axis = [0.0, 1 / 3, 2 / 3, 1.0]
        best = min(
            est.estimate((a, b)) for a in axis for b in axis
        )
        assert result.cost == pytest.approx(best)

    def test_evaluation_count(self):
        est = make_estimator()
        result = NaiveGrid(resolution=3).search(est)
        assert result.evaluations == 9

    def test_guard_against_blowup(self):
        est = make_estimator(m=2)
        with pytest.raises(OptimizationError):
            NaiveGrid(resolution=200, max_points=100).search(est)

    def test_resolution_validated(self):
        est = make_estimator()
        with pytest.raises(OptimizationError):
            NaiveGrid(resolution=1).search(est)

    def test_depths_within_cube(self):
        result = NaiveGrid(resolution=4).search(make_estimator())
        assert all(0.0 <= d <= 1.0 for d in result.depths)


class TestStrategies:
    def test_auto_picks_focused_for_min(self):
        scheme = Strategies(strategy="auto")
        assert scheme._families(Min(2)) == ["focused"]

    def test_auto_picks_parallel_for_avg(self):
        scheme = Strategies(strategy="auto")
        assert scheme._families(Avg(2)) == ["parallel"]

    def test_unknown_strategy_rejected(self):
        with pytest.raises(OptimizationError):
            Strategies(strategy="bogus")

    def test_search_returns_valid_point(self):
        result = Strategies().search(make_estimator())
        assert all(0.0 <= d <= 1.0 for d in result.depths)
        assert result.evaluations > 0

    def test_focused_family_contains_single_deep_configs(self):
        scheme = Strategies(strategy="focused", resolution=3)
        candidates = scheme._candidates(2, ["focused"])
        assert (0.0, 1.0) in candidates
        assert (1.0, 0.0) in candidates

    def test_refinement_never_worsens(self):
        est = make_estimator()
        result = Strategies().search(est)
        family_best = min(
            est.estimate(point)
            for point in Strategies()._candidates(2, ["focused"])
        )
        assert result.cost <= family_best


class TestHillClimb:
    def test_finds_local_optimum_not_worse_than_starts(self):
        est = make_estimator()
        result = HillClimb(restarts=2).search(est)
        for start in ([0.5, 0.5], [1.0, 1.0], [0.0, 0.0]):
            assert result.cost <= est.estimate(start)

    def test_competitive_with_fine_grid(self):
        """HClimb should land within 15% of the exhaustive grid optimum --
        the quality claim of the paper's Appendix comparison."""
        est = make_estimator(fn=Min(2), model=CostModel.expensive_random(2))
        grid = NaiveGrid(resolution=9).search(est)
        climb = HillClimb(restarts=3).search(est)
        assert climb.cost <= grid.cost * 1.15

    def test_uses_fewer_evaluations_than_fine_grid(self):
        est_a = make_estimator()
        grid = NaiveGrid(resolution=9).search(est_a)
        est_b = make_estimator()
        climb = HillClimb(restarts=2).search(est_b)
        assert climb.evaluations < grid.evaluations

    def test_parameter_validation(self):
        with pytest.raises(OptimizationError):
            HillClimb(restarts=-1)
        with pytest.raises(OptimizationError):
            HillClimb(step=0.1, min_step=0.5)

    def test_deterministic_given_seed(self):
        a = HillClimb(restarts=2, seed=3).search(make_estimator())
        b = HillClimb(restarts=2, seed=3).search(make_estimator())
        assert a.depths == b.depths

    def test_three_predicates(self):
        est = make_estimator(fn=Min(3), model=CostModel.uniform(3), m=3)
        result = HillClimb(restarts=1).search(est)
        assert len(result.depths) == 3


class TestSchemeAdaptivity:
    def test_min_function_yields_focused_depths(self):
        """Example 11 / Figure 11(b): under F=min (scenario S2) the optimum
        is *focused* -- one predicate descends, the other is served by
        probes (depth pinned at 1.0) -- and it beats every equal-depth
        configuration."""
        est = make_estimator(fn=Min(2), size=150, k=5, n=1500)
        result = NaiveGrid(resolution=6).search(est)
        assert max(result.depths) == 1.0
        assert max(result.depths) - min(result.depths) >= 0.35
        equal_depth_best = min(
            est.estimate((d, d)) for d in (0.0, 0.2, 0.4, 0.6, 0.8)
        )
        assert result.cost < equal_depth_best

    def test_expensive_probes_forbid_focused_plans(self):
        """With cr = 10*cs, probe-heavy focused plans lose: the optimum
        keeps every depth below 1.0 (descend rather than probe)."""
        est = make_estimator(
            fn=Min(2), model=CostModel.expensive_random(2, ratio=10.0),
            size=150, k=5, n=1500,
        )
        result = NaiveGrid(resolution=6).search(est)
        assert max(result.depths) < 1.0

    def test_free_probes_disable_some_descent(self):
        """Example 2's zero-cost probes: at least one list never descends
        (its depth pins at 1.0) because probing it is free."""
        est = make_estimator(
            fn=Min(2), model=CostModel.uniform(2, cs=1.0, cr=0.0)
        )
        result = NaiveGrid(resolution=6).search(est)
        assert max(result.depths) == 1.0
        assert result.cost <= est.estimate((0.5, 0.5))
