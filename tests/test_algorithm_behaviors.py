"""Micro-behaviour tests: each baseline's *signature* mechanics.

Correctness is covered by the golden invariant; these tests pin the
behavioural fingerprints that make each algorithm what it is -- the
properties the paper's Section 8 unification argument talks about.
"""

import pytest

from repro.algorithms.ca import CA
from repro.algorithms.fa import FA
from repro.algorithms.mpro import MPro
from repro.algorithms.ta import TA
from repro.data.dataset import Dataset
from repro.data.generators import correlated, uniform
from repro.scoring.functions import Avg, Min
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware
from repro.types import AccessType
from tests.conftest import mw_over


class TestTAThresholdMechanics:
    def test_stops_exactly_when_kth_meets_threshold(self):
        """Replay TA's log: before the final round the k-th best evaluated
        score must be below the then-threshold, after it at or above."""
        data = uniform(200, 2, seed=31)
        fn = Avg(2)
        k = 5
        mw = mw_over(data, record_log=True)
        TA().run(mw, fn, k)
        log = mw.stats.log

        # Replay, tracking threshold and the k-th best exact score.
        replay = mw_over(data)
        from repro.core.state import ScoreState

        state = ScoreState(replay, fn)
        exact: list[float] = []
        threshold_history = []
        for access in log:
            if access.kind is AccessType.SORTED:
                obj, score = replay.sorted_access(access.predicate)
                state.record(access.predicate, obj, score)
            else:
                state.record(
                    access.predicate,
                    access.obj,
                    replay.random_access(access.predicate, access.obj),
                )
                if state.is_complete(access.obj):
                    exact.append(state.exact_score(access.obj))
            threshold = fn([replay.last_seen(i) for i in range(2)])
            kth = sorted(exact, reverse=True)[k - 1] if len(exact) >= k else None
            threshold_history.append((kth, threshold))
        final_kth, final_threshold = threshold_history[-1]
        assert final_kth is not None and final_kth >= final_threshold
        # The stop condition did not hold spuriously early: find the last
        # sorted access; before it, the condition must have been false.
        stop_markers = [
            kth is not None and kth >= threshold
            for kth, threshold in threshold_history
        ]
        first_true = stop_markers.index(True)
        assert not any(stop_markers[:first_true])


class TestFAIntersectionMechanics:
    def test_sorted_phase_ends_at_k_common_objects(self):
        data = uniform(150, 2, seed=32)
        k = 4
        mw = mw_over(data, record_log=True)
        FA().run(mw, Min(2), k)
        log = mw.stats.log
        # Split phases: FA is strictly sorted-then-random.
        kinds = [acc.kind for acc in log]
        split = kinds.index(AccessType.RANDOM) if AccessType.RANDOM in kinds else len(log)
        assert all(kind is AccessType.SORTED for kind in kinds[:split])
        assert all(kind is AccessType.RANDOM for kind in kinds[split:])
        # Replay the sorted phase: the intersection reaches k exactly at
        # the end (not before the final round).
        replay = mw_over(data)
        per_list: dict[int, set] = {0: set(), 1: set()}
        for access in log[:split]:
            obj, _ = replay.sorted_access(access.predicate)
            per_list[access.predicate].add(obj)
        assert len(per_list[0] & per_list[1]) >= k

    def test_equal_depth_sorted_phase(self):
        data = uniform(150, 2, seed=33)
        mw = mw_over(data)
        FA().run(mw, Min(2), 3)
        counts = mw.stats.sorted_counts
        assert abs(counts[0] - counts[1]) <= 1


class TestCACadence:
    def test_probe_phases_every_h_rounds(self):
        data = uniform(300, 2, seed=34)
        h = 4
        mw = mw_over(data, record_log=True)
        CA(h=h).run(mw, Min(2), 5)
        log = mw.stats.log
        # Count sorted accesses between consecutive probe bursts: must be
        # (a multiple of the list count times) h, i.e. >= h per burst gap.
        bursts = []
        run_length = 0
        for access in log:
            if access.kind is AccessType.SORTED:
                run_length += 1
            else:
                if run_length:
                    bursts.append(run_length)
                run_length = 0
        if bursts[1:-1]:
            # Interior gaps: h rounds x 2 lists of sorted accesses.
            assert all(gap >= h for gap in bursts[1:-1])

    def test_h_one_degenerates_toward_eager_probing(self):
        data = uniform(300, 2, seed=35)
        mw_eager = mw_over(data)
        CA(h=1).run(mw_eager, Min(2), 5)
        mw_lazy = mw_over(data)
        CA(h=10).run(mw_lazy, Min(2), 5)
        assert mw_eager.stats.total_random >= mw_lazy.stats.total_random


class TestMProConfirmationOrder:
    def test_answers_confirmed_best_first(self):
        data = uniform(120, 2, seed=36)
        mw = Middleware.over(
            data, CostModel.no_sorted(2), no_wild_guesses=False
        )
        result = MPro().run(mw, Min(2), 6)
        assert result.scores == sorted(result.scores, reverse=True)

    def test_schedule_prefix_probed_first(self):
        """Every object's first probe follows the global schedule head."""
        data = uniform(120, 2, seed=37)
        mw = Middleware.over(
            data, CostModel.no_sorted(2), no_wild_guesses=False, record_log=True
        )
        MPro(schedule=[1, 0]).run(mw, Min(2), 3)
        first_probe: dict[int, int] = {}
        for access in mw.stats.log:
            if access.obj not in first_probe:
                first_probe[access.obj] = access.predicate
        assert set(first_probe.values()) == {1}


class TestDominatedDataShortcuts:
    def test_perfectly_correlated_lists_are_cheap_for_everyone(self):
        data = correlated(300, 2, rho=1.0, seed=38)
        for algo in (TA(), FA(), CA()):
            mw = mw_over(data)
            algo.run(mw, Avg(2), 3)
            assert mw.stats.total_accesses < 100, algo.name

    def test_single_dominating_object(self):
        rows = [[0.1, 0.1]] * 50 + [[1.0, 1.0]]
        data = Dataset(rows)
        mw = mw_over(data)
        result = TA().run(mw, Min(2), 1)
        assert result.objects == [50]
        assert mw.stats.total_accesses <= 8
