"""Differential tests: the frontier batch kernel vs. the scalar kernel.

The frontier kernel (:mod:`repro.optimizer.frontier`) costs a whole
search frontier in one plans-as-columns pass and is specified to be
*bitwise-identical* per plan to :meth:`SampleIndex.simulate` -- same
per-predicate counts, same Eq. 1 cost, same error type and message.
These tests hold it to that bar on adversarial inputs (the same
hypothesis instance space as the scalar kernel's differential suite),
pin the :meth:`CostEstimator.estimate_frontier` switch semantics and
fallback counters on top, and cover the search-layer features built on
the batch path: coarse-to-fine ``NaiveGrid`` refinement, ``HillClimb``
warm starts, and the server's per-(expression, k) plan memory.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.data.generators import uniform
from repro.exceptions import (
    KernelMismatchError,
    OptimizationError,
    ReproError,
    UnanswerableQueryError,
)
from repro.obs.metrics import MetricsRegistry
from repro.optimizer.estimator import (
    FRONTIER_MIN_BATCH,
    FRONTIER_VERIFY_RUNS,
    CostEstimator,
)
from repro.optimizer.frontier import FrontierKernel, frontier_evaluator
from repro.optimizer.kernel import SampleIndex, SimulationCounts
from repro.optimizer.optimizer import NCOptimizer
from repro.optimizer.sampling import dummy_uniform_sample
from repro.optimizer.search import HillClimb, NaiveGrid
from repro.scoring.functions import Avg, Min, Product, WeightedSum
from repro.service import QueryServer, ServerConfig
from repro.sources.cost import CostModel
from tests.test_optimizer_kernel import depth_value, instances


def _frontier_plans(depths, schedule, m):
    """A small adversarial frontier around one drawn plan."""
    plans = [
        (depths, schedule),
        (tuple(0.0 for _ in range(m)), schedule),
        (tuple(1.0 for _ in range(m)), schedule),
        (tuple(0.5 for _ in range(m)), tuple(range(m))),
        (depths, tuple(reversed(schedule))),
    ]
    return list(dict.fromkeys(plans))


class TestFrontierKernelDifferential:
    @settings(max_examples=120, deadline=None)
    @given(instances())
    def test_counts_costs_and_errors_match_scalar_kernel(self, instance):
        dataset, fn, k, depths, schedule, model, no_wild_guesses = instance
        index = SampleIndex(dataset, model, no_wild_guesses=no_wild_guesses)
        kernel = FrontierKernel(index)
        if not kernel.supports(fn):
            return
        plans = _frontier_plans(depths, schedule, dataset.m)
        outcomes = kernel.simulate_frontier(fn, k, plans)
        assert len(outcomes) == len(plans)
        for (d, s), outcome in zip(plans, outcomes):
            try:
                want = index.simulate(fn, k, d, s)
            except (ReproError, ValueError) as exc:
                # Same error type *and* message, so the estimator's
                # serial-order exception semantics are indistinguishable.
                assert isinstance(outcome, Exception)
                assert type(outcome) is type(exc)
                assert str(outcome) == str(exc)
                continue
            assert isinstance(outcome, SimulationCounts)
            assert outcome.sorted_counts == want.sorted_counts
            assert outcome.random_counts == want.random_counts
            # Bitwise, not approximate: shared eq1_cost accumulation.
            assert outcome.cost(model) == want.cost(model)

    @settings(max_examples=40, deadline=None)
    @given(instances(), st.integers(min_value=2, max_value=5))
    def test_tail_threshold_never_changes_outcomes(self, instance, tail):
        # The hybrid exact-tail cutover is a pure perf knob.
        dataset, fn, k, depths, schedule, model, no_wild_guesses = instance
        index = SampleIndex(dataset, model, no_wild_guesses=no_wild_guesses)
        if not FrontierKernel(index).supports(fn):
            return
        plans = _frontier_plans(depths, schedule, dataset.m)
        a = FrontierKernel(index, tail_threshold=0).simulate_frontier(
            fn, k, plans
        )
        b = FrontierKernel(index, tail_threshold=tail).simulate_frontier(
            fn, k, plans
        )
        for x, y in zip(a, b):
            if isinstance(x, Exception):
                assert type(x) is type(y) and str(x) == str(y)
            else:
                assert x == y

    def test_unsupported_fn_raises_loudly(self):
        index = SampleIndex(dummy_uniform_sample(2, 10, seed=0), CostModel.uniform(2))
        kernel = FrontierKernel(index)
        assert frontier_evaluator(Product(2)) is None
        assert not kernel.supports(Product(2))
        with pytest.raises(ValueError, match="does not support"):
            kernel.simulate_frontier(Product(2), 1, [((0.5, 0.5), (0, 1))])


def _panel(m, count):
    """``count`` distinct depth vectors (deterministic, no RNG)."""
    out = []
    for i in range(count):
        base = (i + 1) / (count + 1)
        vec = [round(min(1.0, base + 0.07 * j), 6) for j in range(m)]
        out.append(tuple(vec))
    return out


def _estimator(fn=None, metrics=None, **kwargs):
    fn = fn if fn is not None else Avg(2)
    sample = dummy_uniform_sample(fn.arity, 60, seed=3)
    return CostEstimator(
        sample,
        fn,
        5,
        600,
        CostModel.uniform(fn.arity),
        metrics=metrics,
        **kwargs,
    )


class TestEstimateFrontierEquivalence:
    def test_modes_agree_exactly_with_serial_loop(self):
        panel = _panel(2, FRONTIER_MIN_BATCH + 8)
        serial = _estimator(frontier=False)
        expected = [serial.estimate(d) for d in panel]
        for mode in (True, "auto"):
            est = _estimator(frontier=mode)
            assert est.estimate_frontier(panel) == expected
            assert est.runs == serial.runs
            assert est.cache_info()["misses"] == serial.cache_info()["misses"]
            # Costs landed in the memo exactly as the loop's would.
            assert est.estimate_frontier(panel) == expected
            assert est.frontier_fallbacks == 0

    def test_batch_path_actually_used_and_counted(self):
        metrics = MetricsRegistry()
        panel = _panel(2, FRONTIER_MIN_BATCH + 4)
        est = _estimator(frontier=True, verify=False, metrics=metrics)
        est.estimate_frontier(panel)
        assert est.frontier_batches == 1
        assert est.frontier_runs == len(panel)
        assert est.kernel_runs == 0
        counters = metrics.snapshot()["counters"]
        assert counters['repro_estimator_runs_total{path="frontier"}'] == len(
            panel
        )
        assert counters["repro_estimator_frontier_batches_total"] == 1

    def test_auto_mode_peels_verification_head_through_scalar_path(self):
        panel = _panel(2, FRONTIER_MIN_BATCH + FRONTIER_VERIFY_RUNS + 4)
        est = _estimator(frontier="auto", vectorized="auto")
        est.estimate_frontier(panel)
        # The scalar kernel's own spot-checks happened (reference runs),
        # and the frontier's spot-checks did too -- yet every plan was
        # priced exactly once.
        assert est.reference_runs > 0
        assert est.frontier_runs + est.kernel_runs == len(panel)
        assert est.runs == len(panel)

    def test_small_batches_stay_on_the_per_plan_path(self):
        panel = _panel(2, FRONTIER_MIN_BATCH - 1)
        est = _estimator(frontier=True, verify=False)
        est.estimate_frontier(panel)
        assert est.frontier_batches == 0
        assert est.kernel_runs == len(panel)

    def test_duplicates_count_as_cache_hits(self):
        panel = _panel(2, FRONTIER_MIN_BATCH)
        est = _estimator(frontier=True, verify=False)
        costs = est.estimate_frontier(panel + panel[:5])
        assert costs[len(panel):] == costs[:5]
        assert est.cache_hits == 5
        assert est.frontier_runs == len(panel)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            _estimator(frontier="yes")

    def test_error_semantics_match_serial_loop(self):
        # Unanswerable scenario: the batch raises the same error with the
        # same run accounting as the serial loop, and memoizes nothing.
        fn = Min(2)
        sample = dummy_uniform_sample(2, 40, seed=1)
        model = CostModel.no_sorted(2)
        panel = _panel(2, FRONTIER_MIN_BATCH + 2)

        def build(frontier):
            return CostEstimator(
                sample, fn, 3, 400, model, frontier=frontier, verify=False
            )

        serial = build(False)
        with pytest.raises(UnanswerableQueryError) as serial_exc:
            serial.estimate_frontier(panel)
        batched = build(True)
        with pytest.raises(UnanswerableQueryError) as batch_exc:
            batched.estimate_frontier(panel)
        assert str(batch_exc.value) == str(serial_exc.value)
        assert batched.runs == serial.runs
        assert batched.cache_info()["size"] == serial.cache_info()["size"] == 0


class TestFrontierFallbacks:
    def test_unsupported_fn_falls_back_loudly(self):
        metrics = MetricsRegistry()
        fn = Product(2)
        panel = _panel(2, FRONTIER_MIN_BATCH + 2)
        est = _estimator(fn=fn, frontier="auto", verify=False, metrics=metrics)
        reference = _estimator(fn=fn, frontier=False, verify=False)
        assert est.estimate_frontier(panel) == reference.estimate_frontier(
            panel
        )
        assert est.frontier_fallbacks == 1
        assert est.frontier_runs == 0
        assert not est.frontier_active
        counters = metrics.snapshot()["counters"]
        key = 'repro_estimator_frontier_fallbacks_total{reason="unsupported_fn"}'
        assert counters[key] == 1

    def test_verify_mismatch_falls_back_in_auto_mode(self, monkeypatch):
        metrics = MetricsRegistry()
        panel = _panel(2, FRONTIER_MIN_BATCH + 2)
        reference = _estimator(frontier=False, verify=False)
        expected = reference.estimate_frontier(panel)
        # Default verify policy: "auto" spot-checks the first frontier
        # outcomes against the scalar kernel -- which catches the lie.
        est = _estimator(frontier="auto", metrics=metrics)
        wrong = SimulationCounts((999, 999), (999, 999))
        monkeypatch.setattr(
            FrontierKernel,
            "simulate_frontier",
            lambda self, fn, k, plans: [wrong] * len(plans),
        )
        assert est.estimate_frontier(panel) == expected
        assert est.frontier_fallbacks == 1
        assert est.frontier_runs == 0
        counters = metrics.snapshot()["counters"]
        key = 'repro_estimator_frontier_fallbacks_total{reason="verify_mismatch"}'
        assert counters[key] == 1
        # Permanently abandoned: later batches go per-plan, uncounted.
        est.estimate_frontier(_panel(2, FRONTIER_MIN_BATCH + 6))
        assert est.frontier_fallbacks == 1
        assert est.frontier_batches == 0

    def test_verify_mismatch_raises_in_frontier_true_mode(self, monkeypatch):
        panel = _panel(2, FRONTIER_MIN_BATCH + 2)
        est = _estimator(frontier=True)
        wrong = SimulationCounts((999, 999), (999, 999))
        monkeypatch.setattr(
            FrontierKernel,
            "simulate_frontier",
            lambda self, fn, k, plans: [wrong] * len(plans),
        )
        with pytest.raises(KernelMismatchError):
            est.estimate_frontier(panel)

    def test_internal_error_falls_back_in_auto_mode(self, monkeypatch):
        metrics = MetricsRegistry()
        panel = _panel(2, FRONTIER_MIN_BATCH + 2)
        reference = _estimator(frontier=False, verify=False)
        expected = reference.estimate_frontier(panel)
        est = _estimator(frontier="auto", verify=False, metrics=metrics)

        def boom(self, fn, k, plans):
            raise RuntimeError("frontier kernel bug")

        monkeypatch.setattr(FrontierKernel, "simulate_frontier", boom)
        assert est.estimate_frontier(panel) == expected
        assert est.frontier_fallbacks == 1
        counters = metrics.snapshot()["counters"]
        key = 'repro_estimator_frontier_fallbacks_total{reason="internal_error"}'
        assert counters[key] == 1

    def test_internal_error_propagates_in_frontier_true_mode(self, monkeypatch):
        panel = _panel(2, FRONTIER_MIN_BATCH + 2)
        est = _estimator(frontier=True, verify=False)

        def boom(self, fn, k, plans):
            raise RuntimeError("frontier kernel bug")

        monkeypatch.setattr(FrontierKernel, "simulate_frontier", boom)
        with pytest.raises(RuntimeError, match="frontier kernel bug"):
            est.estimate_frontier(panel)


class TestSearchIntegration:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(depth_value, min_size=2, max_size=2))
    def test_chosen_plans_identical_across_frontier_switch(self, start):
        results = []
        for mode in (True, False):
            est = _estimator(frontier=mode, verify=False)
            results.append(
                HillClimb(seed=7).search(est, warm_starts=[start]).depths
            )
        assert results[0] == results[1]

    def test_grid_chosen_plans_identical_across_frontier_switch(self):
        chosen = []
        for mode in (True, False):
            est = _estimator(frontier=mode, verify=False)
            chosen.append(NaiveGrid(resolution=6).search(est).depths)
        assert chosen[0] == chosen[1]

    def test_coarse_to_fine_validation(self):
        with pytest.raises(OptimizationError):
            NaiveGrid(resolution=5, coarse_resolution=5)
        with pytest.raises(OptimizationError):
            NaiveGrid(resolution=5, coarse_resolution=1)

    def test_coarse_to_fine_refines_the_coarse_optimum(self):
        est = _estimator(frontier="auto", verify=False)
        coarse_only = NaiveGrid(resolution=3).search(est)
        refined = NaiveGrid(resolution=9, coarse_resolution=3).search(
            _estimator(frontier="auto", verify=False)
        )
        full = NaiveGrid(resolution=9).search(
            _estimator(frontier="auto", verify=False)
        )
        # The coarse best sits on the fine grid, so refinement can only
        # improve on it -- and never beats the exhaustive fine scan.
        assert refined.cost <= coarse_only.cost
        assert refined.cost >= full.cost
        assert "coarse=3" in NaiveGrid(
            resolution=9, coarse_resolution=3
        ).describe()

    def test_coarse_to_fine_prices_fewer_plans_than_full_grid(self):
        fine = _estimator(frontier="auto", verify=False)
        NaiveGrid(resolution=9).search(fine)
        two_stage = _estimator(frontier="auto", verify=False)
        NaiveGrid(resolution=9, coarse_resolution=3).search(two_stage)
        assert two_stage.runs < fine.runs

    def test_warm_starts_only_add_evaluations(self):
        plain = _estimator(frontier="auto", verify=False)
        plain_result = HillClimb(seed=7).search(plain)
        warm = _estimator(frontier="auto", verify=False)
        warm_result = HillClimb(seed=7).search(
            warm, warm_starts=[plain_result.depths, (2.0, -1.0)]
        )
        # Out-of-range warm points are clipped, not rejected; canonical
        # starts still run, so the warm search can only do better.
        assert warm_result.cost <= plain_result.cost


class TestOptimizerNotes:
    def test_plan_notes_carry_frontier_counters_and_phase_times(self):
        ticks = itertools.count()
        optimizer = NCOptimizer(
            scheme=NaiveGrid(resolution=6),
            clock=lambda: float(next(ticks)),
        )
        sample = dummy_uniform_sample(2, 60, seed=3)
        plan = optimizer.plan(sample, Avg(2), 5, 600, CostModel.uniform(2))
        notes = plan.notes
        assert notes["frontier_batches"] >= 1
        assert notes["frontier_runs"] > 0
        assert notes["frontier_fallbacks"] == 0
        assert set(notes["phase_seconds"]) == {
            "schedule",
            "delta_search",
            "h_optimization",
        }

    def test_trace_timeline_renders_the_optimizer_summary(self):
        from repro.obs.timeline import format_timeline

        events = [
            {"event": "phase", "phase": "schedule", "tick": 0},
            {
                "event": "phase",
                "phase": "done",
                "tick": 5,
                "phase_seconds": {
                    "schedule": 0.0001,
                    "delta_search": 0.0123,
                    "h_optimization": 0.0004,
                },
                "frontier_runs": 33,
                "frontier_batches": 1,
                "frontier_fallbacks": 0,
            },
            {"event": "access", "predicate": 0, "kind": "sorted", "tick": 1},
        ]
        rendered = format_timeline(events)
        assert "optimizer: phases schedule=0.0001s" in rendered
        assert "delta_search=0.0123s" in rendered
        assert "frontier_runs=33" in rendered
        assert "frontier_batches=1" in rendered
        # Zero-valued fallback counters stay out of the summary line.
        assert "frontier_fallbacks" not in rendered

    def test_warm_start_threads_through_plan(self):
        optimizer = NCOptimizer(scheme=HillClimb(seed=7))
        sample = dummy_uniform_sample(2, 60, seed=3)
        plan = optimizer.plan(
            sample,
            Avg(2),
            5,
            600,
            CostModel.uniform(2),
            warm_start=[(0.4, 0.4)],
        )
        assert plan.notes["warm_started"] is True


class TestServerPlanMemory:
    MIN_Q = "SELECT * FROM r ORDER BY min(a, b) STOP AFTER 5"
    MIN_Q_K3 = "SELECT * FROM r ORDER BY min(a, b) STOP AFTER 3"

    def _server(self, **kwargs):
        return QueryServer(
            CostModel.uniform(2, cs=1.0, cr=2.0),
            dataset=uniform(300, 2, seed=3),
            schema=["a", "b"],
            config=ServerConfig(**kwargs),
        )

    def test_exact_repeat_reuses_the_remembered_plan(self):
        server = self._server()
        cold = server.query(self.MIN_Q)
        warm = server.query(self.MIN_Q)
        assert server.stats()["warm_start_hits"] == 1
        assert server.stats()["plan_memory_entries"] == 1
        counters = server.stats()["metrics"]["counters"]
        assert counters['repro_server_warm_start_total{kind="reuse"}'] == 1
        # Reuse must not change the answer (planning is deterministic).
        assert [e.obj for e in warm.result.ranking] == [
            e.obj for e in cold.result.ranking
        ]

    def test_same_expression_different_k_warm_climbs(self):
        server = self._server()
        server.query(self.MIN_Q)
        server.query(self.MIN_Q_K3)
        counters = server.stats()["metrics"]["counters"]
        assert counters['repro_server_warm_start_total{kind="climb"}'] == 1
        assert server.stats()["plan_memory_entries"] == 2

    def test_plan_memory_can_be_disabled(self):
        server = self._server(plan_memory=False)
        server.query(self.MIN_Q)
        server.query(self.MIN_Q)
        assert server.stats()["warm_start_hits"] == 0
        assert server.stats()["plan_memory_entries"] == 0
