"""The deep lint pass: project model, dataflow provenance, RL101-RL105.

Fixtures build miniature ``repro`` package trees on disk (module names
resolve by walking ``__init__.py`` markers), trip each deep rule through
genuinely flow-sensitive paths -- aliased receivers, helper returns,
attribute stores, cross-module inheritance -- and pin the clean
counterexamples. The suite ends with the self-checks CI runs: the deep
pass over ``src/repro`` must be clean modulo the committed baseline, and
an injected violation must fail the ratchet.
"""

import textwrap
import time
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint import registered_deep_rules, registered_rules, run_lint
from repro.lint.baseline import load_baseline, match_baseline, render_baseline
from repro.lint.deep import build_project, module_name_for
from repro.lint.core import ModuleContext, load_module

BASELINE = "lint-baseline.json"


def write_tree(tmp_path, files):
    """Materialize a fixture package tree; return the root path."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


def deep_findings(tmp_path, files, select=None):
    root = write_tree(tmp_path, files)
    return run_lint([root], select=select, deep=True).findings


def pkg(files):
    """Add the ``__init__.py`` markers a repro-shaped fixture needs."""
    tree = dict(files)
    for rel in list(files):
        parts = rel.split("/")[:-1]
        for depth in range(1, len(parts) + 1):
            tree.setdefault("/".join(parts[:depth]) + "/__init__.py", "")
    return tree


class TestRegistries:
    def test_deep_rules_are_separate_from_shallow(self):
        assert set(registered_deep_rules()) == {
            "RL101",
            "RL102",
            "RL103",
            "RL104",
            "RL105",
        }
        # The shallow registry is untouched by the deep pass.
        assert set(registered_rules()) == {
            "RL001",
            "RL002",
            "RL003",
            "RL004",
            "RL005",
        }

    def test_deep_rules_require_deep_flag(self, tmp_path):
        (tmp_path / "m.py").write_text("x = 1\n")
        with pytest.raises(ValueError, match="--deep"):
            run_lint([tmp_path], select=["RL102"])
        report = run_lint([tmp_path], select=["RL102"], deep=True)
        assert report.rules_run == ["RL102"]

    def test_shallow_run_never_invokes_deep_rules(self, tmp_path):
        files = pkg(
            {
                "repro/app.py": """
                import random

                def main():
                    return random.Random(7)
                """
            }
        )
        root = write_tree(tmp_path, files)
        shallow = run_lint([root])
        assert "RL102" not in {f.rule for f in shallow.findings}


class TestProjectModel:
    def test_module_names_walk_package_markers(self, tmp_path):
        write_tree(
            tmp_path,
            pkg({"repro/sources/middleware.py": "x = 1\n"}),
        )
        path = tmp_path / "repro" / "sources" / "middleware.py"
        assert module_name_for(path) == "repro.sources.middleware"

    def test_call_graph_and_witness_paths(self, tmp_path):
        files = pkg(
            {
                "repro/a.py": """
                from repro.b import helper

                def entry():
                    return helper()
                """,
                "repro/b.py": """
                def helper():
                    return leaf()

                def leaf():
                    return 1
                """,
            }
        )
        root = write_tree(tmp_path, files)
        modules = [
            m
            for m in (load_module(p) for p in sorted(root.rglob("*.py")))
            if isinstance(m, ModuleContext)
        ]
        project = build_project(modules)
        parents = project.reachable_from(["repro.a.entry"])
        assert "repro.b.leaf" in parents
        assert project.witness_path(parents, "repro.b.leaf") == [
            "repro.a.entry",
            "repro.b.helper",
            "repro.b.leaf",
        ]

    def test_relative_imports_resolve_to_absolute_names(self, tmp_path):
        files = pkg(
            {
                "repro/determinism.py": """
                def derive_rng(seed):
                    return seed
                """,
                "repro/faults/retry.py": """
                from ..determinism import derive_rng

                def fresh():
                    return derive_rng(3)
                """,
            }
        )
        root = write_tree(tmp_path, files)
        modules = [load_module(p) for p in sorted(root.rglob("*.py"))]
        project = build_project(modules)
        assert (
            "repro.determinism.derive_rng"
            in project.call_graph["repro.faults.retry.fresh"]
        )


class TestRL101SourceEscape:
    def test_aliased_raw_source_behind_middleware_name(self, tmp_path):
        # RL001's name heuristic trusts the receiver spelling "mw"; the
        # provenance engine knows the value is a raw source.
        files = pkg(
            {
                "repro/engine.py": """
                from repro.sources.simulated import SimulatedSource

                def run():
                    mw = SimulatedSource()
                    return mw.sorted_access()
                """
            }
        )
        findings = deep_findings(tmp_path, files, select=["RL101"])
        assert [f.rule for f in findings] == ["RL101"]
        assert "raw source by provenance" in findings[0].message

    def test_source_list_escapes_into_algorithm_call(self, tmp_path):
        files = pkg(
            {
                "repro/algorithms/ta.py": """
                def run_ta(sources, k):
                    return sources, k
                """,
                "repro/driver.py": """
                from repro.algorithms.ta import run_ta
                from repro.sources.simulated import sources_for

                def main():
                    srcs = sources_for(None)
                    return run_ta(srcs, 2)
                """,
            }
        )
        findings = deep_findings(tmp_path, files, select=["RL101"])
        assert [f.rule for f in findings] == ["RL101"]
        assert "escapes uncharged into repro.algorithms.ta.run_ta" in (
            findings[0].message
        )

    def test_middleware_wrapping_consumes_the_taint(self, tmp_path):
        files = pkg(
            {
                "repro/algorithms/ta.py": """
                def run_ta(sources, k):
                    return sources, k
                """,
                "repro/driver.py": """
                from repro.algorithms.ta import run_ta
                from repro.sources.middleware import Middleware
                from repro.sources.simulated import sources_for

                def main():
                    srcs = sources_for(None)
                    mw = Middleware(srcs)
                    return run_ta(mw, 2)
                """,
            }
        )
        assert deep_findings(tmp_path, files, select=["RL101"]) == []


class TestRL102RngProvenance:
    def test_rng_threaded_through_two_calls_reaches_core(self, tmp_path):
        # The acceptance fixture: construction in one helper, identity
        # pass-through in another, escape into repro.core two calls
        # later. Only interprocedural summaries can connect them.
        files = pkg(
            {
                "repro/helpers.py": """
                import random

                def make_rng(seed):
                    return random.Random(seed)

                def pass_through(rng):
                    return rng
                """,
                "repro/core/framework.py": """
                def run(k, rng):
                    return k, rng
                """,
                "repro/app.py": """
                from repro.core.framework import run
                from repro.helpers import make_rng, pass_through

                def main():
                    rng = pass_through(make_rng(7))
                    return run(2, rng)
                """,
            }
        )
        findings = deep_findings(tmp_path, files, select=["RL102"])
        escapes = [
            f for f in findings if "reaches repro.core.framework.run" in f.message
        ]
        assert len(escapes) == 1
        assert escapes[0].path.endswith("app.py")
        # The construction site itself is also flagged (helpers.py is
        # not a sanctioned randomness root).
        assert any(
            f.path.endswith("helpers.py")
            and "constructed outside repro.determinism" in f.message
            for f in findings
        )

    def test_rng_alias_stored_on_attribute(self, tmp_path):
        files = pkg(
            {
                "repro/engine.py": """
                import random

                class Engine:
                    def setup(self, seed):
                        r = random.Random(seed)
                        tmp = r
                        self.rng = tmp
                """
            }
        )
        findings = deep_findings(tmp_path, files, select=["RL102"])
        stores = [f for f in findings if "stored on self.rng" in f.message]
        assert len(stores) == 1

    def test_derive_rng_idiom_is_clean(self, tmp_path):
        files = pkg(
            {
                "repro/determinism.py": """
                import random

                def derive_rng(seed):
                    return random.Random(seed)
                """,
                "repro/core/framework.py": """
                def run(k, rng):
                    return k, rng
                """,
                "repro/app.py": """
                from repro.core.framework import run
                from repro.determinism import derive_rng

                def main():
                    rng = derive_rng(5)
                    return run(2, rng)
                """,
            }
        )
        assert deep_findings(tmp_path, files, select=["RL102"]) == []

    def test_refactored_faults_module_has_zero_false_positives(self):
        # The satellite fix routed the injector and retry jitter through
        # derive_rng; the provenance rule must agree they are sanctioned.
        report = run_lint(
            ["src/repro/faults", "src/repro/determinism.py"],
            select=["RL102"],
            deep=True,
        )
        assert report.findings == []


class TestRL103SharedState:
    def test_ranked_inventory_with_ownership_markers(self, tmp_path):
        files = pkg(
            {
                "repro/parallel/executor.py": """
                class Executor:
                    def __init__(self):
                        self.jobs = []

                    def execute(self, job):
                        self.jobs.append(job)
                        self.jobs.append(job)
                        self.done = True
                        self.owned = 1  # repro-ownership: executor loop

                    def fanout(self, job):
                        self.jobs.append(job)
                """
            }
        )
        findings = deep_findings(tmp_path, files, select=["RL103"])
        messages = [f.message for f in findings]
        # jobs: 3 unmarked sites (rank 1); done: 1 site (rank 2);
        # owned: marked, absent; __init__ store: construction, absent.
        assert len(findings) == 2
        assert any("[rank 1]" in m and ".jobs mutated at 3" in m for m in messages)
        assert any("[rank 2]" in m and ".done mutated at 1" in m for m in messages)
        assert not any(".owned" in m for m in messages)

    def test_reachability_through_cross_module_inheritance(self, tmp_path):
        # The executor inherits charge() from shared middleware code;
        # the mutation is two modules away from the root entry point.
        files = pkg(
            {
                "repro/sources/middleware.py": """
                class Metered:
                    def charge(self):
                        self.count = self.count + 1
                """,
                "repro/parallel/executor.py": """
                from repro.sources.middleware import Metered

                class Executor(Metered):
                    def run(self):
                        self.charge()
                """,
            }
        )
        findings = deep_findings(tmp_path, files, select=["RL103"])
        assert len(findings) == 1
        assert "Metered.count" in findings[0].message
        assert "Executor.run" in findings[0].message  # witness chain

    def test_unreachable_mutations_not_inventoried(self, tmp_path):
        files = pkg(
            {
                "repro/sources/middleware.py": """
                class Metered:
                    def charge(self):
                        self.count = self.count + 1
                """
            }
        )
        assert deep_findings(tmp_path, files, select=["RL103"]) == []


class TestRL104ClockDiscipline:
    def test_wall_clock_reachable_from_virtual_time(self, tmp_path):
        # The RL002 waiver covers the spelling; reachability from the
        # virtual-time executor is a separate obligation.
        files = pkg(
            {
                "repro/util.py": """
                import time

                def stamp():
                    return time.time()  # repro-lint: ignore[RL002] -- bench only
                """,
                "repro/parallel/executor.py": """
                from repro.util import stamp

                class Executor:
                    def tick(self):
                        return stamp()
                """,
            }
        )
        findings = deep_findings(tmp_path, files)
        rules = {f.rule for f in findings}
        assert "RL104" in rules
        assert "RL002" not in rules  # the per-line waiver held
        rl104 = [f for f in findings if f.rule == "RL104"][0]
        assert "repro.parallel.executor.Executor.tick -> repro.util.stamp" in (
            rl104.message
        )

    def test_unreachable_wall_clock_not_flagged_by_rl104(self, tmp_path):
        files = pkg(
            {
                "repro/util.py": """
                import time

                def stamp():
                    return time.time()  # repro-lint: ignore[RL002] -- bench only
                """,
                "repro/parallel/executor.py": """
                class Executor:
                    def tick(self):
                        return 0
                """,
            }
        )
        assert deep_findings(tmp_path, files, select=["RL104"]) == []


class TestRL105AccountingParity:
    def test_unpaired_budget_raise_flagged_paired_clean(self, tmp_path):
        files = pkg(
            {
                "repro/service/server.py": """
                from repro.exceptions import BudgetExceededError

                class Server:
                    def reject(self):
                        raise BudgetExceededError("over")

                    def reject_counted(self):
                        self.metrics.inc("repro_budget_rejections_total")
                        raise BudgetExceededError("over")
                """
            }
        )
        findings = deep_findings(tmp_path, files, select=["RL105"])
        assert len(findings) == 1
        assert "raise BudgetExceededError" in findings[0].message

    def test_partial_true_and_record_cached_need_emissions(self, tmp_path):
        files = pkg(
            {
                "repro/core/framework.py": """
                class Framework:
                    def annotate(self, result):
                        result.partial = True

                    def annotate_traced(self, result):
                        result.partial = True
                        self.trace.emit("degraded", 0)
                """,
                "repro/sources/cache.py": """
                class Cache:
                    def absorb(self, access):
                        self.stats.record_cached(access)
                """,
            }
        )
        findings = deep_findings(tmp_path, files, select=["RL105"])
        messages = sorted(f.message for f in findings)
        assert len(findings) == 2
        assert any("partial = True" in m for m in messages)
        assert any("record_cached" in m for m in messages)


class TestSelfLint:
    def test_deep_pass_clean_modulo_committed_baseline(self):
        report = run_lint(["src/repro"], deep=True)
        match = match_baseline(report.findings, load_baseline(Path(BASELINE)))
        assert match.new == [], [f.format() for f in match.new]
        assert match.stale == []

    def test_deep_pass_stays_within_wall_time_budget(self):
        start = time.perf_counter()
        run_lint(["src/repro"], deep=True)
        elapsed = time.perf_counter() - start
        assert elapsed < 30.0, f"deep pass took {elapsed:.1f}s (budget 30s)"

    def test_injected_violation_fails_the_ratchet(self, tmp_path, capsys):
        # A fresh RL102 violation outside the baseline must exit nonzero
        # even with the committed baseline supplied.
        extra = tmp_path / "repro" / "rogue.py"
        extra.parent.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        extra.write_text(
            "import random\n\n\ndef bad(seed):\n"
            "    return random.Random(seed)\n"
        )
        code = cli_main(
            [
                "lint",
                "src/repro",
                str(extra),
                "--deep",
                "--baseline",
                BASELINE,
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "RL102" in out
        assert "rogue.py" in out

    def test_committed_baseline_matches_current_findings_exactly(self):
        # Regenerating the baseline in-memory must reproduce the
        # committed file byte for byte (ratchet is up to date).
        report = run_lint(["src/repro"], deep=True)
        assert render_baseline(report.findings) == Path(BASELINE).read_text()
