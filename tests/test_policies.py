"""Tests for the Select policies, chiefly SR/G (Figure 9)."""

import pytest

from repro.core.policies import (
    RandomPolicy,
    RoundRobinPolicy,
    SelectContext,
    SRGPolicy,
)
from repro.core.state import ScoreState
from repro.scoring.functions import Min
from repro.types import Access
from tests.conftest import mw_over


def make_ctx(ds1, target=2):
    mw = mw_over(ds1)
    state = ScoreState(mw, Min(2))
    return SelectContext(state=state, middleware=mw, target=target), mw, state


class TestSRGConstruction:
    def test_depth_range_validated(self):
        with pytest.raises(ValueError):
            SRGPolicy([0.5, 1.5])
        with pytest.raises(ValueError):
            SRGPolicy([-0.1])

    def test_schedule_must_be_permutation(self):
        with pytest.raises(ValueError):
            SRGPolicy([0.5, 0.5], schedule=[0, 0])
        with pytest.raises(ValueError):
            SRGPolicy([0.5, 0.5], schedule=[0, 2])

    def test_default_schedule_is_identity(self):
        assert SRGPolicy([0.5, 0.5]).schedule == (0, 1)

    def test_describe(self):
        text = SRGPolicy([0.25, 1.0], schedule=[1, 0]).describe()
        assert "0.25" in text and "p1,p0" in text


class TestSRGSortedRule:
    def test_sorted_taken_while_above_depth(self, ds1):
        ctx, mw, _ = make_ctx(ds1)
        policy = SRGPolicy([0.5, 0.5])
        alts = [Access.sorted(0), Access.random(0, 2)]
        assert policy.select(alts, ctx) == Access.sorted(0)

    def test_random_taken_once_depth_reached(self, ds1):
        ctx, mw, state = make_ctx(ds1)
        policy = SRGPolicy([0.9, 0.9])
        mw.sorted_access(0)  # l_0 = 0.7 <= 0.9: depth reached
        alts = [Access.sorted(0), Access.random(0, 2)]
        assert policy.select(alts, ctx) == Access.random(0, 2)

    def test_depth_one_disables_sorted(self, ds1):
        # delta = 1.0: l_i starts at exactly 1.0, never strictly above.
        ctx, _, _ = make_ctx(ds1)
        policy = SRGPolicy([1.0, 1.0])
        alts = [Access.sorted(0), Access.random(0, 2)]
        assert policy.select(alts, ctx) == Access.random(0, 2)

    def test_prefers_deepest_list(self, ds1):
        ctx, mw, _ = make_ctx(ds1)
        policy = SRGPolicy([0.0, 0.0])
        mw.sorted_access(0)  # l_0 = 0.7; l_1 still 1.0
        alts = [Access.sorted(0), Access.sorted(1)]
        assert policy.select(alts, ctx) == Access.sorted(1)

    def test_equal_depths_tie_break_lowest_index(self, ds1):
        ctx, _, _ = make_ctx(ds1)
        policy = SRGPolicy([0.0, 0.0])
        alts = [Access.sorted(1), Access.sorted(0)]
        assert policy.select(alts, ctx) == Access.sorted(0)


class TestSRGGlobalSchedule:
    def test_random_follows_schedule_order(self, ds1):
        ctx, _, _ = make_ctx(ds1)
        policy = SRGPolicy([1.0, 1.0], schedule=[1, 0])
        alts = [Access.random(0, 2), Access.random(1, 2)]
        assert policy.select(alts, ctx) == Access.random(1, 2)

    def test_identity_schedule(self, ds1):
        ctx, _, _ = make_ctx(ds1)
        policy = SRGPolicy([1.0, 1.0])
        alts = [Access.random(1, 2), Access.random(0, 2)]
        assert policy.select(alts, ctx) == Access.random(0, 2)


class TestSRGCompletenessFallbacks:
    def test_takes_sorted_beyond_depth_when_only_option(self, ds1):
        ctx, _, _ = make_ctx(ds1)
        policy = SRGPolicy([1.0, 1.0])  # depths forbid sorted...
        alts = [Access.sorted(0)]  # ...but nothing else exists
        assert policy.select(alts, ctx) == Access.sorted(0)

    def test_empty_alternatives_rejected(self, ds1):
        ctx, _, _ = make_ctx(ds1)
        with pytest.raises(ValueError):
            SRGPolicy([0.5, 0.5]).select([], ctx)


class TestRoundRobinPolicy:
    def test_cycles_predicates(self, ds1):
        ctx, _, _ = make_ctx(ds1)
        policy = RoundRobinPolicy()
        alts = [Access.sorted(0), Access.sorted(1)]
        first = policy.select(alts, ctx)
        second = policy.select(alts, ctx)
        assert {first.predicate, second.predicate} == {0, 1}

    def test_reset_restarts_cycle(self, ds1):
        ctx, _, _ = make_ctx(ds1)
        policy = RoundRobinPolicy()
        alts = [Access.sorted(0), Access.sorted(1)]
        first = policy.select(alts, ctx)
        policy.reset()
        assert policy.select(alts, ctx) == first

    def test_falls_back_to_random(self, ds1):
        ctx, _, _ = make_ctx(ds1)
        policy = RoundRobinPolicy()
        alts = [Access.random(1, 2), Access.random(0, 2)]
        assert policy.select(alts, ctx) == Access.random(0, 2)


class TestRandomPolicy:
    def test_selects_member(self, ds1):
        ctx, _, _ = make_ctx(ds1)
        policy = RandomPolicy(seed=1)
        alts = [Access.sorted(0), Access.sorted(1), Access.random(0, 2)]
        for _ in range(20):
            assert policy.select(alts, ctx) in alts

    def test_reset_reproduces_sequence(self, ds1):
        ctx, _, _ = make_ctx(ds1)
        policy = RandomPolicy(seed=7)
        alts = [Access.sorted(0), Access.sorted(1)]
        first = [policy.select(alts, ctx) for _ in range(10)]
        policy.reset()
        second = [policy.select(alts, ctx) for _ in range(10)]
        assert first == second
