"""Tests for the lazy max-heap underpinning Theorem-1 maintenance."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.heap import LazyMaxHeap


class TestBasics:
    def test_empty_pop(self):
        heap = LazyMaxHeap()
        assert heap.pop_current(lambda obj: 0.0) is None
        assert len(heap) == 0

    def test_pop_order_without_staleness(self):
        heap = LazyMaxHeap()
        priorities = {0: 0.3, 1: 0.9, 2: 0.5}
        for obj, p in priorities.items():
            heap.push(obj, p)
        popped = [heap.pop_current(priorities.__getitem__) for _ in range(3)]
        assert popped == [(1, 0.9), (2, 0.5), (0, 0.3)]

    def test_tie_break_higher_oid_first(self):
        heap = LazyMaxHeap()
        priorities = {3: 0.5, 7: 0.5, 1: 0.5}
        for obj, p in priorities.items():
            heap.push(obj, p)
        order = [heap.pop_current(priorities.__getitem__)[0] for _ in range(3)]
        assert order == [7, 3, 1]

    def test_unseen_sentinel_loses_ties(self):
        heap = LazyMaxHeap()
        priorities = {-1: 0.7, 0: 0.7}
        for obj, p in priorities.items():
            heap.push(obj, p)
        assert heap.pop_current(priorities.__getitem__)[0] == 0

    def test_peek_stored_does_not_pop(self):
        heap = LazyMaxHeap()
        heap.push(1, 0.4)
        assert heap.peek_stored() == (1, 0.4)
        assert len(heap) == 1


class TestStaleness:
    def test_stale_entry_reinserted_with_fresh_priority(self):
        heap = LazyMaxHeap()
        current = {0: 0.9, 1: 0.8}
        heap.push(0, current[0])
        heap.push(1, current[1])
        current[0] = 0.1  # 0's priority decayed since its push
        obj, priority = heap.pop_current(current.__getitem__)
        assert (obj, priority) == (1, 0.8)
        assert heap.pop_current(current.__getitem__) == (0, 0.1)

    def test_mass_decay_still_yields_true_max(self):
        heap = LazyMaxHeap()
        current = {obj: 1.0 for obj in range(100)}
        for obj in range(100):
            heap.push(obj, 1.0)
        # Everyone decays differently; the heap must find the new max.
        rng = random.Random(0)
        for obj in current:
            current[obj] = rng.random()
        best = max(current.items(), key=lambda kv: (kv[1], kv[0]))
        obj, priority = heap.pop_current(current.__getitem__)
        assert (obj, priority) == (best[0], best[1])


class TestMonotoneDecreaseProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0, max_value=1, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
        st.data(),
    )
    def test_pops_match_reference_under_random_decay(self, initial, data):
        """Pop order equals exact sorting despite arbitrary priority decay.

        Priorities only ever decrease between pops (the framework's
        contract); the lazy heap must then agree with a brute-force
        ranking at every pop.
        """
        heap = LazyMaxHeap()
        current = dict(enumerate(initial))
        for obj, p in current.items():
            heap.push(obj, p)
        alive = set(current)
        while alive:
            # Decay a random subset before the next pop.
            for obj in sorted(alive):
                if data.draw(st.booleans()):
                    current[obj] = data.draw(
                        st.floats(min_value=0, max_value=current[obj], allow_nan=False)
                    )
            expected = max(
                ((current[o], o) for o in alive), key=lambda t: (t[0], t[1])
            )
            obj, priority = heap.pop_current(current.__getitem__)
            assert (priority, obj) == expected
            alive.remove(obj)
