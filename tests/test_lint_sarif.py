"""SARIF reporter: structure, rule metadata, baselineState, CLI round-trip.

Structural assertions always run; when ``jsonschema`` is importable the
output is additionally validated against an embedded subset of the SARIF
2.1.0 schema (the fields code-scanning UIs actually consume -- the full
OASIS schema is remote and CI runs offline).
"""

import json
import textwrap

import pytest

from repro.cli import main as cli_main
from repro.lint import run_lint, sarif_report
from repro.lint.baseline import load_baseline, match_baseline, write_baseline

#: Subset of the SARIF 2.1.0 schema covering every field we emit.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "message", "locations"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "level": {
                                    "enum": [
                                        "none",
                                        "note",
                                        "warning",
                                        "error",
                                    ]
                                },
                                "baselineState": {
                                    "enum": [
                                        "new",
                                        "unchanged",
                                        "updated",
                                        "absent",
                                    ]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "required": ["physicalLocation"],
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}

VIOLATION = """
import random

def jitter():
    return random.random()
"""


def write_violation(tmp_path, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(VIOLATION))
    return path


def validate_subset(doc):
    """Schema-validate when jsonschema is available (skipped offline CI)."""
    jsonschema = pytest.importorskip("jsonschema")
    jsonschema.validate(doc, SARIF_SUBSET_SCHEMA)


class TestSarifReport:
    def test_structure_and_rule_metadata(self, tmp_path):
        path = write_violation(tmp_path)
        report = run_lint([path])
        doc = json.loads(sarif_report(report))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == report.rules_run
        by_id = {r["id"]: r for r in run["tool"]["driver"]["rules"]}
        assert "shortDescription" in by_id["RL002"]
        result = run["results"][0]
        assert result["ruleId"] == "RL002"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == run_lint([path]).findings[0].line

    def test_deep_run_carries_rl1xx_metadata(self, tmp_path):
        path = write_violation(tmp_path)
        report = run_lint([path], deep=True)
        doc = json.loads(sarif_report(report))
        rule_ids = {
            r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]
        }
        assert {"RL101", "RL102", "RL103", "RL104", "RL105"} <= rule_ids

    def test_baseline_state_partitions_results(self, tmp_path):
        old = write_violation(tmp_path, "old.py")
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, run_lint([old]).findings)
        new = write_violation(tmp_path, "new.py")

        report = run_lint([new, old])
        match = match_baseline(
            report.findings, load_baseline(baseline_path)
        )
        doc = json.loads(sarif_report(report, baselined=match.absorbed))
        states = {
            result["locations"][0]["physicalLocation"][
                "artifactLocation"
            ]["uri"]: result["baselineState"]
            for result in doc["runs"][0]["results"]
        }
        assert states[str(new)] == "new"
        assert states[str(old)] == "unchanged"

    def test_schema_validation_clean_and_dirty(self, tmp_path):
        path = write_violation(tmp_path)
        validate_subset(json.loads(sarif_report(run_lint([path]))))
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        validate_subset(json.loads(sarif_report(run_lint([clean]))))


class TestSarifCLI:
    def test_format_sarif_round_trips_through_stdout(
        self, tmp_path, capsys
    ):
        path = write_violation(tmp_path)
        code = cli_main(["lint", str(path), "--format", "sarif"])
        out = capsys.readouterr().out
        assert code == 1
        doc = json.loads(out)
        validate_subset(doc)
        assert doc["runs"][0]["results"][0]["ruleId"] == "RL002"

    def test_sarif_with_baseline_keeps_all_results_marked(
        self, tmp_path, capsys
    ):
        # Unlike text/JSON (which drop absorbed findings), SARIF keeps
        # the full result set and marks baselineState so scanning UIs
        # see the debt too.
        path = write_violation(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        cli_main(
            [
                "lint",
                str(path),
                "--baseline",
                str(baseline_path),
                "--update-baseline",
            ]
        )
        capsys.readouterr()
        code = cli_main(
            [
                "lint",
                str(path),
                "--format",
                "sarif",
                "--baseline",
                str(baseline_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0  # absorbed -> ratchet clean
        results = json.loads(out)["runs"][0]["results"]
        assert [r["baselineState"] for r in results] == ["unchanged"]

    def test_self_sarif_over_repo_validates(self, capsys):
        code = cli_main(
            [
                "lint",
                "src/repro",
                "--deep",
                "--format",
                "sarif",
                "--baseline",
                "lint-baseline.json",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        doc = json.loads(out)
        validate_subset(doc)
        # Every committed-baseline finding is marked as known debt.
        states = {
            r["baselineState"] for r in doc["runs"][0]["results"]
        }
        assert states <= {"unchanged"}
