"""The golden invariant, property-tested with hypothesis.

Every algorithm in the library must return a correct top-k answer -- the
exact scores of a valid top-k set -- on *arbitrary* datasets, scoring
functions and retrieval sizes. Datasets are drawn adversarially (ties,
zeros, ones, skew); the NC engine is additionally held to the canonical
tie-broken answer.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.ca import CA
from repro.algorithms.fa import FA
from repro.algorithms.mpro import MPro
from repro.algorithms.nc import NC
from repro.algorithms.nra import NRA
from repro.algorithms.quick_combine import QuickCombine
from repro.algorithms.stream_combine import StreamCombine
from repro.algorithms.ta import TA
from repro.algorithms.upper import Upper
from repro.core.framework import FrameworkNC
from repro.core.policies import SRGPolicy
from repro.data.dataset import Dataset
from repro.optimizer.plan import SRGPlan
from repro.scoring.functions import Avg, Max, Median, Min, Product
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware
from tests.conftest import score_multiset

# Score values deliberately include exact ties and the interval endpoints.
score_value = st.one_of(
    st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32),
)


@st.composite
def instances(draw, max_m: int = 3):
    n = draw(st.integers(min_value=1, max_value=24))
    m = draw(st.integers(min_value=1, max_value=max_m))
    rows = draw(
        st.lists(
            st.lists(score_value, min_size=m, max_size=m),
            min_size=n,
            max_size=n,
        )
    )
    dataset = Dataset(np.array(rows, dtype=float))
    fn = draw(
        st.sampled_from([Min(m), Max(m), Avg(m), Product(m), Median(m)])
    )
    k = draw(st.integers(min_value=1, max_value=n + 2))
    return dataset, fn, k


def check(result, dataset, fn, k):
    oracle = dataset.topk(fn, k)
    assert len(result.ranking) == len(oracle)
    assert score_multiset(result.ranking) == score_multiset(oracle)
    for entry in result.ranking:
        assert entry.score == pytest.approx(
            fn(dataset.object_scores(entry.obj)), abs=1e-9
        )


class TestGoldenInvariant:
    @settings(max_examples=80, deadline=None)
    @given(instances(), st.floats(min_value=0, max_value=1), st.floats(min_value=0, max_value=1))
    def test_nc_any_plan(self, instance, d0, d1):
        dataset, fn, k = instance
        depths = tuple([d0, d1, (d0 + d1) / 2][: dataset.m])
        mw = Middleware.over(dataset, CostModel.uniform(dataset.m))
        result = FrameworkNC(mw, fn, k, SRGPolicy(depths)).run()
        check(result, dataset, fn, k)
        # On tie-free instances NC resolves the ranking canonically (the
        # paper assumes no ties; with ties an *undiscovered* object can
        # share the k-th score, and no algorithm can tie-break against an
        # object it never saw).
        overall = sorted(dataset.overall_scores(fn))
        tie_free = all(a != b for a, b in zip(overall, overall[1:]))
        if tie_free:
            assert result.objects == [e.obj for e in dataset.topk(fn, k)]

    @settings(max_examples=50, deadline=None)
    @given(instances())
    def test_ta(self, instance):
        dataset, fn, k = instance
        mw = Middleware.over(dataset, CostModel.uniform(dataset.m))
        check(TA().run(mw, fn, k), dataset, fn, k)

    @settings(max_examples=50, deadline=None)
    @given(instances())
    def test_fa(self, instance):
        dataset, fn, k = instance
        mw = Middleware.over(dataset, CostModel.uniform(dataset.m))
        check(FA().run(mw, fn, k), dataset, fn, k)

    @settings(max_examples=50, deadline=None)
    @given(instances())
    def test_nra_exact(self, instance):
        dataset, fn, k = instance
        mw = Middleware.over(dataset, CostModel.no_random(dataset.m))
        check(NRA().run(mw, fn, k), dataset, fn, k)

    @settings(max_examples=50, deadline=None)
    @given(instances())
    def test_ca(self, instance):
        dataset, fn, k = instance
        mw = Middleware.over(dataset, CostModel.expensive_random(dataset.m))
        check(CA().run(mw, fn, k), dataset, fn, k)

    @settings(max_examples=50, deadline=None)
    @given(instances())
    def test_mpro(self, instance):
        dataset, fn, k = instance
        mw = Middleware.over(
            dataset, CostModel.no_sorted(dataset.m), no_wild_guesses=False
        )
        check(MPro().run(mw, fn, k), dataset, fn, k)

    @settings(max_examples=50, deadline=None)
    @given(instances())
    def test_upper(self, instance):
        dataset, fn, k = instance
        mw = Middleware.over(
            dataset, CostModel.no_sorted(dataset.m), no_wild_guesses=False
        )
        check(Upper().run(mw, fn, k), dataset, fn, k)

    @settings(max_examples=50, deadline=None)
    @given(instances())
    def test_quick_combine(self, instance):
        dataset, fn, k = instance
        mw = Middleware.over(dataset, CostModel.uniform(dataset.m))
        check(QuickCombine().run(mw, fn, k), dataset, fn, k)

    @settings(max_examples=50, deadline=None)
    @given(instances())
    def test_stream_combine(self, instance):
        dataset, fn, k = instance
        mw = Middleware.over(dataset, CostModel.no_random(dataset.m))
        check(StreamCombine().run(mw, fn, k), dataset, fn, k)

    @settings(max_examples=30, deadline=None)
    @given(instances(max_m=2))
    def test_nc_packaged_with_fixed_plan(self, instance):
        dataset, fn, k = instance
        plan = SRGPlan(
            depths=tuple([0.5] * dataset.m),
            schedule=tuple(range(dataset.m)),
        )
        mw = Middleware.over(dataset, CostModel.uniform(dataset.m))
        check(NC(plan=plan).run(mw, fn, k), dataset, fn, k)
