"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.data.dataset import Dataset, dataset1
from repro.data.generators import uniform
from repro.scoring.functions import Avg, Min
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware


@pytest.fixture
def ds1() -> Dataset:
    """The paper's Dataset 1 (Figure 3)."""
    return dataset1()


@pytest.fixture
def small_uniform() -> Dataset:
    """A small deterministic uniform dataset (n=50, m=2)."""
    return uniform(50, 2, seed=123)


@pytest.fixture
def medium_uniform() -> Dataset:
    """A medium uniform dataset (n=300, m=3)."""
    return uniform(300, 3, seed=7)


@pytest.fixture
def min2() -> Min:
    return Min(2)


@pytest.fixture
def avg2() -> Avg:
    return Avg(2)


def mw_over(dataset: Dataset, cost_model: CostModel | None = None, **kwargs) -> Middleware:
    """Fresh middleware with a default uniform cost model."""
    if cost_model is None:
        cost_model = CostModel.uniform(dataset.m)
    return Middleware.over(dataset, cost_model, **kwargs)


def score_multiset(ranking) -> list[float]:
    """Rounded score multiset for tie-insensitive answer comparison."""
    scores = [entry.score for entry in ranking]
    return sorted(round(score, 9) for score in scores)


def assert_valid_topk(result, dataset: Dataset, fn, k: int) -> None:
    """The returned ranking is *a* correct top-k with exact scores.

    Checks: right length, scores exact for the returned objects, ranking
    order consistent, and score multiset equal to the oracle's (ties may
    swap members between algorithms; see algorithms.base docs).
    """
    oracle = dataset.topk(fn, k)
    assert len(result.ranking) == len(oracle)
    for entry in result.ranking:
        true = fn(dataset.object_scores(entry.obj))
        assert entry.score == pytest.approx(true, abs=1e-9), (
            f"object {entry.obj}: reported {entry.score}, true {true}"
        )
    scores = [entry.score for entry in result.ranking]
    assert scores == sorted(scores, reverse=True)
    assert score_multiset(result.ranking) == score_multiset(oracle)
