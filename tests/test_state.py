"""Tests for ScoreState: Eq. 3 bounds and completeness bookkeeping."""

import pytest

from repro.core.state import ScoreState
from repro.data.generators import uniform
from repro.scoring.functions import Avg, Min
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware
from tests.conftest import mw_over


def make_state(ds1, fn=None):
    mw = mw_over(ds1)
    return mw, ScoreState(mw, fn or Min(2))


class TestRecording:
    def test_known_score(self, ds1):
        _, state = make_state(ds1)
        state.record(0, 2, 0.7)
        assert state.known_score(2, 0) == 0.7
        assert state.known_score(2, 1) is None

    def test_undetermined(self, ds1):
        _, state = make_state(ds1)
        assert state.undetermined(2) == [0, 1]
        state.record(0, 2, 0.7)
        assert state.undetermined(2) == [1]

    def test_completeness(self, ds1):
        _, state = make_state(ds1)
        assert not state.is_complete(2)
        state.record(0, 2, 0.7)
        assert not state.is_complete(2)
        state.record(1, 2, 0.7)
        assert state.is_complete(2)

    def test_exact_score_requires_completeness(self, ds1):
        _, state = make_state(ds1)
        with pytest.raises(ValueError):
            state.exact_score(2)
        state.record(0, 2, 0.7)
        state.record(1, 2, 0.7)
        assert state.exact_score(2) == pytest.approx(0.7)

    def test_tracked(self, ds1):
        _, state = make_state(ds1)
        assert state.tracked_count() == 0
        state.record(0, 1, 0.65)
        assert list(state.tracked()) == [1]

    def test_arity_mismatch_rejected(self, ds1):
        mw = mw_over(ds1)
        with pytest.raises(ValueError):
            ScoreState(mw, Min(3))


class TestUpperBound:
    def test_untracked_object_uses_last_seen_vector(self, ds1):
        mw, state = make_state(ds1)
        assert state.upper_bound(0) == 1.0  # F(1, 1) = min(1, 1)
        mw.sorted_access(0)  # l_0 -> 0.7
        assert state.upper_bound(0) == pytest.approx(0.7)

    def test_known_scores_override_bounds(self, ds1):
        mw, state = make_state(ds1)
        obj, score = mw.sorted_access(0)  # u3 at 0.7
        state.record(0, obj, score)
        # u3: known p0 = 0.7, p1 bounded by l_1 = 1.0 -> min = 0.7
        assert state.upper_bound(obj) == pytest.approx(0.7)

    def test_predicate_upper(self, ds1):
        mw, state = make_state(ds1)
        obj, score = mw.sorted_access(0)
        state.record(0, obj, score)
        assert state.predicate_upper(obj, 0) == pytest.approx(0.7)
        assert state.predicate_upper(obj, 1) == 1.0

    def test_bound_sound_and_decreasing_during_descent(self):
        # F_max(u) >= F(u) at all times, and never increases.
        data = uniform(30, 2, seed=9)
        fn = Avg(2)
        mw = mw_over(data)
        state = ScoreState(mw, fn)
        previous = {obj: state.upper_bound(obj) for obj in range(30)}
        while not mw.exhausted(0):
            obj, score = mw.sorted_access(0)
            state.record(0, obj, score)
            for u in range(30):
                bound = state.upper_bound(u)
                true = fn(data.object_scores(u))
                assert bound >= true - 1e-12
                assert bound <= previous[u] + 1e-12
                previous[u] = bound


class TestLowerBound:
    def test_unknowns_count_as_zero(self, ds1):
        _, state = make_state(ds1, Avg(2))
        state.record(0, 2, 0.7)
        assert state.lower_bound(2) == pytest.approx(0.35)

    def test_untracked_is_f_of_zeros(self, ds1):
        _, state = make_state(ds1, Avg(2))
        assert state.lower_bound(0) == 0.0

    def test_complete_object_bounds_coincide(self, ds1):
        _, state = make_state(ds1, Avg(2))
        state.record(0, 2, 0.7)
        state.record(1, 2, 0.7)
        assert state.lower_bound(2) == state.upper_bound(2) == pytest.approx(0.7)


class TestUnseenBound:
    def test_initially_perfect(self, ds1):
        _, state = make_state(ds1)
        assert state.unseen_bound() == 1.0

    def test_follows_last_seen(self, ds1):
        mw, state = make_state(ds1)
        mw.sorted_access(0)
        assert state.unseen_bound() == pytest.approx(0.7)
        mw.sorted_access(1)  # u1 at 0.9 on p1
        assert state.unseen_bound() == pytest.approx(min(0.7, 0.9))

    def test_random_only_predicates_stay_at_one(self, ds1):
        model = CostModel((1.0, float("inf")), (float("inf"), 1.0))
        mw = Middleware.over(ds1, model)
        state = ScoreState(mw, Min(2))
        mw.sorted_access(0)
        # p1 has no sorted access, so its contribution to the unseen bound
        # stays 1.0; the bound is min(0.7, 1.0).
        assert state.unseen_bound() == pytest.approx(0.7)


class TestSnapshot:
    def test_snapshot_row(self, ds1):
        _, state = make_state(ds1)
        assert state.snapshot(2) == (None, None)
        state.record(1, 2, 0.7)
        assert state.snapshot(2) == (None, 0.7)
