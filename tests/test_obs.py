"""Unit tests for the observability layer (repro.obs).

Covers the :class:`MetricsRegistry` counter/gauge semantics, the bounded
deterministic :class:`TraceRecorder`, JSON-lines round-trips, and the
Fig. 7-style timeline renderer.
"""

import io
import json

import pytest

from repro.obs import (
    MetricsRegistry,
    TraceRecorder,
    build_timeline,
    format_timeline,
    read_trace,
    render_series,
)


class TestRenderSeries:
    def test_bare_name_without_labels(self):
        assert render_series("repro_accesses_total", ()) == "repro_accesses_total"

    def test_labels_render_prometheus_style(self):
        key = render_series("x_total", (("kind", "sorted"), ("predicate", "0")))
        assert key == 'x_total{kind="sorted",predicate="0"}'


class TestMetricsRegistry:
    def test_inc_defaults_to_one(self):
        reg = MetricsRegistry()
        reg.inc("a_total")
        reg.inc("a_total")
        assert reg.counter_value("a_total") == 2.0

    def test_labels_are_order_insensitive(self):
        reg = MetricsRegistry()
        reg.inc("a_total", predicate=0, kind="sorted")
        reg.inc("a_total", kind="sorted", predicate=0)
        assert reg.counter_value("a_total", kind="sorted", predicate=0) == 2.0
        assert reg.total("a_total") == 2.0

    def test_distinct_label_sets_are_distinct_series(self):
        reg = MetricsRegistry()
        reg.inc("a_total", kind="sorted")
        reg.inc("a_total", 3.0, kind="random")
        assert reg.counter_value("a_total", kind="sorted") == 1.0
        assert reg.counter_value("a_total", kind="random") == 3.0
        assert reg.total("a_total") == 4.0

    def test_negative_increment_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="counters only increase"):
            reg.inc("a_total", -1.0)

    def test_unknown_series_reads_as_zero_or_none(self):
        reg = MetricsRegistry()
        assert reg.counter_value("never_total") == 0.0
        assert reg.total("never_total") == 0.0
        assert reg.gauge_value("never") is None

    def test_gauge_holds_latest_value(self):
        reg = MetricsRegistry()
        reg.set_gauge("clock", 3)
        reg.set_gauge("clock", 7)
        assert reg.gauge_value("clock") == 7.0

    def test_snapshot_is_deterministic_and_json_safe(self):
        def feed(reg):
            reg.inc("b_total", kind="random", predicate=1)
            reg.inc("a_total", 2.5, predicate=0)
            reg.set_gauge("clock", 9)

        one, two = MetricsRegistry(), MetricsRegistry()
        feed(one)
        feed(two)
        assert one.snapshot() == two.snapshot()
        dumped = json.dumps(one.snapshot(), sort_keys=True)
        assert json.loads(dumped) == one.snapshot()
        assert one.snapshot()["counters"]['a_total{predicate="0"}'] == 2.5
        assert one.snapshot()["gauges"]["clock"] == 9.0

    def test_series_iterates_sorted(self):
        reg = MetricsRegistry()
        reg.inc("a_total", predicate=1)
        reg.inc("a_total", predicate=0)
        labels = [dict(ls) for ls, _ in reg.series("a_total")]
        assert labels == [{"predicate": "0"}, {"predicate": "1"}]

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.describe("a_total", "charged accesses")
        reg.inc("a_total", predicate=0)
        reg.set_gauge("clock", 4)
        text = reg.render_prometheus()
        assert "# HELP a_total charged accesses" in text
        assert "# TYPE a_total counter" in text
        assert 'a_total{predicate="0"} 1' in text
        assert "# TYPE clock gauge" in text
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""
        assert MetricsRegistry().snapshot() == {"counters": {}, "gauges": {}}

    def test_reset_zeroes_series_keeps_help(self):
        reg = MetricsRegistry()
        reg.describe("a_total", "help text")
        reg.inc("a_total")
        reg.set_gauge("g", 1)
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}}
        reg.inc("a_total")
        assert "# HELP a_total help text" in reg.render_prometheus()


class TestTraceRecorder:
    def test_emit_records_in_order(self):
        trace = TraceRecorder()
        trace.emit("access", 1, predicate=0, kind="sorted")
        trace.emit("fault", 2, predicate=1, kind="random")
        assert len(trace) == 2
        first, second = trace.events
        assert (first.tick, first.event) == (1, "access")
        assert dict(second.fields) == {"predicate": 1, "kind": "random"}

    def test_capacity_keeps_prefix_and_counts_drops(self):
        trace = TraceRecorder(capacity=3)
        for tick in range(5):
            trace.emit("access", tick, predicate=0)
        assert len(trace) == 3
        assert trace.dropped == 2
        assert [e.tick for e in trace.events] == [0, 1, 2]

    def test_bounded_trace_is_prefix_of_unbounded(self):
        bounded, unbounded = TraceRecorder(capacity=2), TraceRecorder(capacity=None)
        for tick in range(4):
            bounded.emit("access", tick, predicate=0)
            unbounded.emit("access", tick, predicate=0)
        assert unbounded.to_jsonl().startswith(bounded.to_jsonl())

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            TraceRecorder(capacity=0)

    def test_clear_drops_events_and_overflow(self):
        trace = TraceRecorder(capacity=1)
        trace.emit("access", 0)
        trace.emit("access", 1)
        trace.clear()
        assert len(trace) == 0 and trace.dropped == 0

    def test_identical_feeds_produce_identical_bytes(self):
        def feed(trace):
            trace.emit("access", 1, predicate=0, kind="sorted", cost=1.0)
            trace.emit("session", 2, session="q1", status="done")

        one, two = TraceRecorder(), TraceRecorder()
        feed(one)
        feed(two)
        assert one.to_jsonl() == two.to_jsonl()

    def test_write_and_read_round_trip(self, tmp_path):
        trace = TraceRecorder()
        trace.emit("access", 1, predicate=0, kind="sorted")
        trace.emit("phase", 0, phase="schedule")
        path = str(tmp_path / "trace.jsonl")
        assert trace.write(path) == 2
        events = read_trace(path)
        assert [e["event"] for e in events] == ["access", "phase"]
        assert events[0] == {
            "tick": 1,
            "event": "access",
            "predicate": 0,
            "kind": "sorted",
        }

    def test_write_to_stream(self):
        trace = TraceRecorder()
        trace.emit("access", 1)
        buffer = io.StringIO()
        assert trace.write(buffer) == 1
        assert read_trace(io.StringIO(buffer.getvalue()))[0]["tick"] == 1


class TestReadTrace:
    def test_blank_lines_are_skipped(self):
        events = read_trace(['{"event": "access", "tick": 1}', "", "  "])
        assert len(events) == 1

    def test_malformed_json_names_the_line(self):
        with pytest.raises(ValueError, match="line 2"):
            read_trace(['{"event": "access", "tick": 1}', "{not json"])

    def test_non_event_object_rejected(self):
        with pytest.raises(ValueError, match="line 1"):
            read_trace(['["a", "list"]'])
        with pytest.raises(ValueError, match="line 1"):
            read_trace(['{"tick": 3}'])


def _sample_events():
    return [
        {"tick": 0, "event": "access", "predicate": 0, "kind": "sorted"},
        {"tick": 1, "event": "access", "predicate": 0, "kind": "sorted"},
        {"tick": 2, "event": "cache_hit", "predicate": 1, "kind": "random"},
        {"tick": 3, "event": "fault", "predicate": 1, "kind": "sorted"},
        {"tick": 3, "event": "access", "predicate": 1, "kind": "sorted"},
        {"tick": 4, "event": "breaker", "predicate": 1, "kind": "sorted"},
        {"tick": 5, "event": "budget_rejected", "predicate": 0, "kind": "random"},
        {"tick": 2, "event": "phase", "phase": "delta_search"},
    ]


class TestTimeline:
    def test_build_counts_per_predicate(self):
        timeline = build_timeline(_sample_events())
        assert [lane.predicate for lane in timeline.predicates] == [0, 1]
        p0, p1 = timeline.predicates
        assert p0.sorted_accesses == 2
        assert p0.budget_rejections == 1
        assert (p1.cache_hits, p1.faults, p1.breaker_transitions) == (1, 1, 1)
        assert timeline.first_tick == 0 and timeline.last_tick == 5
        assert timeline.event_counts["access"] == 3
        assert timeline.event_counts["phase"] == 1

    def test_severity_wins_within_a_bucket(self):
        # fault (x) and access (s) share tick 3 on predicate 1; with a
        # width of one bucket per tick span the fault glyph must win.
        rendered = format_timeline(_sample_events(), width=12)
        lane_p1 = next(line for line in rendered.splitlines() if "p1 |" in line)
        assert "x" in lane_p1
        assert "legend:" in rendered

    def test_empty_trace_renders_placeholder(self):
        rendered = format_timeline([])
        assert "no predicate-scoped events" in rendered

    def test_width_floor(self):
        with pytest.raises(ValueError, match="width"):
            format_timeline(_sample_events(), width=4)

    def test_unscoped_events_only_count_aggregates(self):
        timeline = build_timeline([{"tick": 1, "event": "session"}])
        assert timeline.predicates == []
        assert timeline.event_counts == {"session": 1}
