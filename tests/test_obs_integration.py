"""Cross-layer observability integration tests (docs/OBSERVABILITY.md).

The point of the unified registry is that one snapshot reconciles with
every layer's local books. These tests pin that:

* a chaos middleware run reconciles ``MetricsRegistry`` against
  :class:`AccessStats` (charged, cached, retries, faults, cost) and the
  trace event stream;
* a warm serving run under faults, cache hits and budgets reconciles the
  registry against ``QueryServer.stats()``, session records and
  ``CacheStats`` -- including the ``charged + cached == recorded``
  invariant;
* a Hypothesis sweep holds those invariants over random fault rates,
  budgets and batch shapes;
* two seeded runs of the same traced scenario produce byte-identical
  JSON-lines traces (determinism as correctness, lint rule RL002).
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import TA
from repro.data.generators import uniform
from repro.exceptions import ReproError
from repro.faults import FaultProfile, RetryPolicy, chaos_middleware, faulty_sources_for
from repro.obs import MetricsRegistry, TraceRecorder, build_timeline
from repro.scoring.functions import Min
from repro.service import QueryServer, ServerConfig
from repro.sources.cache import SourceCache
from repro.sources.cost import CostModel


def _chaos_run(metrics=None, trace=None, rate=0.15, seed=3):
    dataset = uniform(80, 2, seed=11)
    middleware = chaos_middleware(
        dataset,
        CostModel.uniform(2, cs=1.0, cr=2.0),
        FaultProfile.transient(rate),
        seed=seed,
        retry_policy=RetryPolicy(),
        metrics=metrics,
        trace=trace,
    )
    result = TA().run(middleware, Min(2), 5)
    return middleware, result


class TestChaosRunReconciles:
    def test_registry_matches_access_stats(self):
        metrics = MetricsRegistry()
        trace = TraceRecorder()
        middleware, _ = _chaos_run(metrics=metrics, trace=trace)
        stats = middleware.stats

        assert metrics.total("repro_accesses_total") == stats.total_accesses
        assert metrics.total("repro_access_cost_total") == pytest.approx(
            stats.total_cost()
        )
        assert metrics.total("repro_cached_accesses_total") == stats.total_cached
        assert metrics.total("repro_retries_total") == stats.total_retries
        assert metrics.total("repro_faults_total") == stats.total_faults
        assert metrics.total("repro_backoff_time_total") == pytest.approx(
            stats.backoff_time
        )
        # This run retried through real faults; the counters are live.
        assert stats.total_faults > 0 and stats.total_retries > 0

    def test_trace_narrates_the_same_numbers(self):
        metrics = MetricsRegistry()
        trace = TraceRecorder()
        middleware, _ = _chaos_run(metrics=metrics, trace=trace)
        assert trace.dropped == 0
        events = [e.as_dict() for e in trace.events]
        by_type = {}
        for event in events:
            by_type[event["event"]] = by_type.get(event["event"], 0) + 1
        assert by_type["access"] == middleware.stats.total_accesses
        assert by_type["fault"] == middleware.stats.total_faults
        # Ticks ride the access-count clock: nondecreasing, no wall time.
        ticks = [e["tick"] for e in events]
        assert ticks == sorted(ticks)
        timeline = build_timeline(events)
        assert sum(
            lane.sorted_accesses + lane.random_accesses
            for lane in timeline.predicates
        ) == middleware.stats.total_accesses


def _serving_batch():
    return [
        ("SELECT * FROM r ORDER BY min(a, b) STOP AFTER 5", None),
        ("SELECT * FROM r ORDER BY min(a, b) STOP AFTER 5", None),
        ("SELECT * FROM r ORDER BY avg(a, b) STOP AFTER 4", None),
        ("SELECT * FROM r ORDER BY min(a, b) STOP AFTER 7", 3.0),
        ("SELECT * FROM r ORDER BY avg(a, b) STOP AFTER 3", None),
    ]


def _chaos_server(metrics=None, trace=None, rate=0.1, seed=9, **config_kwargs):
    dataset = uniform(60, 2, seed=21)
    model = CostModel.uniform(2, cs=1.0, cr=2.0)
    sources = faulty_sources_for(
        dataset,
        FaultProfile.transient(rate),
        seed=seed,
        sorted_capable=model.sorted_capabilities,
        random_capable=model.random_capabilities,
    )
    return QueryServer(
        model,
        cache=SourceCache(sources),
        schema=("a", "b"),
        config=ServerConfig(retry_policy=RetryPolicy(), seed=4, **config_kwargs),
        metrics=metrics,
        trace=trace,
    )


def _assert_server_reconciles(server, sessions):
    snap = server.stats()
    metrics = server.metrics
    charged = [s for s in sessions if s is not None]

    # Eq. 1 totals agree middleware <-> server <-> registry.
    assert metrics.total("repro_accesses_total") == snap["charged_accesses_total"]
    assert metrics.total("repro_accesses_total") == sum(
        s.charged_accesses for s in charged
    )
    assert metrics.total("repro_access_cost_total") == pytest.approx(
        snap["charged_cost_total"]
    )
    assert metrics.total("repro_access_cost_total") == pytest.approx(
        sum(s.charged_cost for s in charged)
    )

    # charged + cached == recorded: every delivered access is either a
    # charged web-source hit or an uncharged cache ride.
    cached_total = metrics.total("repro_cached_accesses_total")
    assert cached_total == sum(s.cache_hits for s in charged)
    assert cached_total == metrics.total("repro_cache_hits_total")
    assert cached_total == snap["cache"]["hits"]

    # Session lifecycle counters agree with the session records.
    assert metrics.total("repro_sessions_total") == len(charged)
    assert metrics.counter_value(
        "repro_sessions_total", status="done"
    ) == snap["completed"]
    assert metrics.counter_value(
        "repro_sessions_total", status="failed"
    ) == snap["failed"]

    # The registry's server clock gauge is the breaker clock base.
    assert metrics.gauge_value("repro_server_clock") == snap[
        "charged_accesses_total"
    ]

    # The snapshot in stats() is the same registry, byte for byte.
    assert snap["metrics"] == metrics.snapshot()


class TestServingRunReconciles:
    def test_warm_chaos_budgeted_batch(self):
        metrics = MetricsRegistry()
        trace = TraceRecorder()
        server = _chaos_server(metrics=metrics, trace=trace)
        sessions = [server.query(text, budget=b) for text, b in _serving_batch()]
        _assert_server_reconciles(server, sessions)

        # The run exercised all three accounting paths: charged frontier
        # accesses, free cache rides, and at least one fault retried.
        assert metrics.total("repro_accesses_total") > 0
        assert metrics.total("repro_cached_accesses_total") > 0
        assert metrics.total("repro_faults_total") > 0

        # The trace narrates every session boundary.
        session_events = [
            e for e in trace.events if e.event == "session"
        ]
        assert len(session_events) == 2 * len(sessions)

    def test_budget_rejections_land_in_the_ledger(self):
        metrics = MetricsRegistry()
        # Fail loudly on budget exhaustion so the refused access actually
        # reaches the middleware's charge gate (graceful degradation
        # steers around unaffordable accesses without attempting them).
        server = _chaos_server(metrics=metrics, rate=0.0, degrade_on_budget=False)
        session = server.query(
            "SELECT * FROM r ORDER BY min(a, b) STOP AFTER 5", budget=1.0
        )
        assert session.status == "failed"
        assert session.error_type == "BudgetExceededError"
        assert metrics.total("repro_budget_rejections_total") >= 1.0
        _assert_server_reconciles(server, [session])


class TestReconciliationProperty:
    @settings(max_examples=12, deadline=None)
    @given(
        rate=st.sampled_from([0.0, 0.05, 0.15]),
        seed=st.integers(min_value=0, max_value=50),
        budget=st.sampled_from([None, 2.0, 12.0]),
        repeats=st.integers(min_value=1, max_value=3),
    )
    def test_registry_reconciles_under_faults_cache_and_budgets(
        self, rate, seed, budget, repeats
    ):
        metrics = MetricsRegistry()
        server = _chaos_server(metrics=metrics, rate=rate, seed=seed)
        sessions = []
        for _ in range(repeats):
            for text, _b in _serving_batch()[:3]:
                try:
                    sessions.append(server.query(text, budget=budget))
                except ReproError:
                    # Overload/refusals never un-balance the books; the
                    # failed session still reconciled its charges.
                    pass
        sessions = [s for s in sessions if s is not None]
        _assert_server_reconciles(server, sessions)
        snapshot = server.metrics.snapshot()
        for value in snapshot["counters"].values():
            assert value >= 0 and math.isfinite(value)


class TestTraceDeterminism:
    def test_chaos_run_trace_bytes_replay(self):
        traces = []
        for _ in range(2):
            trace = TraceRecorder()
            _chaos_run(trace=trace, rate=0.2, seed=7)
            traces.append(trace.to_jsonl())
        assert traces[0] == traces[1]
        assert traces[0]  # non-empty: the run really was narrated

    def test_serving_run_trace_bytes_replay(self):
        payloads = []
        for _ in range(2):
            trace = TraceRecorder()
            server = _chaos_server(trace=trace)
            for text, b in _serving_batch():
                server.query(text, budget=b)
            payloads.append(trace.to_jsonl())
        assert payloads[0] == payloads[1]

    def test_metrics_snapshots_replay_too(self):
        snaps = []
        for _ in range(2):
            metrics = MetricsRegistry()
            _chaos_run(metrics=metrics, rate=0.2, seed=7)
            snaps.append(metrics.snapshot())
        assert snaps[0] == snaps[1]
