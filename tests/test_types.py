"""Tests for the shared value types (accesses, rankings, ordering)."""

import pytest

from repro.types import (
    Access,
    AccessType,
    QueryResult,
    RankedObject,
    rank_key,
    rank_objects,
)
from repro.sources.cost import CostModel
from repro.sources.stats import AccessStats


class TestAccess:
    def test_sorted_constructor(self):
        acc = Access.sorted(2)
        assert acc.kind is AccessType.SORTED
        assert acc.predicate == 2
        assert acc.obj is None
        assert acc.is_sorted and not acc.is_random

    def test_random_constructor(self):
        acc = Access.random(1, 42)
        assert acc.kind is AccessType.RANDOM
        assert acc.predicate == 1
        assert acc.obj == 42
        assert acc.is_random and not acc.is_sorted

    def test_sorted_rejects_object(self):
        with pytest.raises(ValueError):
            Access(AccessType.SORTED, 0, obj=3)

    def test_random_requires_object(self):
        with pytest.raises(ValueError):
            Access(AccessType.RANDOM, 0)

    def test_equality_and_hash(self):
        assert Access.sorted(1) == Access.sorted(1)
        assert Access.sorted(1) != Access.sorted(2)
        assert Access.random(1, 5) == Access.random(1, 5)
        assert Access.random(1, 5) != Access.random(1, 6)
        assert len({Access.sorted(0), Access.sorted(0), Access.random(0, 1)}) == 2

    def test_str_forms(self):
        assert str(Access.sorted(0)) == "sa_0"
        assert str(Access.random(1, 7)) == "ra_1(7)"


class TestRankKey:
    def test_orders_by_score_descending(self):
        assert rank_key(0.9, 1) < rank_key(0.8, 1)

    def test_breaks_ties_by_higher_oid(self):
        # The paper's worked examples break ties with the higher object id.
        assert rank_key(0.5, 9) < rank_key(0.5, 3)

    def test_sorted_with_rank_key_is_best_first(self):
        pairs = [(1, 0.3), (2, 0.9), (3, 0.9), (4, 0.1)]
        ordered = sorted(pairs, key=lambda p: rank_key(p[1], p[0]))
        assert [obj for obj, _ in ordered] == [3, 2, 1, 4]


class TestRankObjects:
    def test_keeps_top_k(self):
        ranking = rank_objects([(0, 0.2), (1, 0.8), (2, 0.5)], k=2)
        assert [entry.obj for entry in ranking] == [1, 2]

    def test_k_larger_than_input(self):
        ranking = rank_objects([(0, 0.2)], k=5)
        assert len(ranking) == 1

    def test_tie_break(self):
        ranking = rank_objects([(0, 0.5), (1, 0.5)], k=1)
        assert ranking[0].obj == 1


class TestRankedObject:
    def test_unpacking(self):
        obj, score = RankedObject(3, 0.7)
        assert obj == 3
        assert score == 0.7

    def test_frozen(self):
        entry = RankedObject(1, 0.5)
        with pytest.raises(AttributeError):
            entry.score = 0.9  # type: ignore[misc]


class TestQueryResult:
    def _result(self) -> QueryResult:
        stats = AccessStats(CostModel.uniform(2, cs=1.0, cr=3.0))
        stats.record(Access.sorted(0))
        stats.record(Access.random(1, 0))
        return QueryResult(
            ranking=[RankedObject(5, 0.9), RankedObject(2, 0.7)],
            stats=stats,
            algorithm="test",
        )

    def test_objects_and_scores(self):
        result = self._result()
        assert result.objects == [5, 2]
        assert result.scores == [0.9, 0.7]

    def test_total_cost_delegates_to_stats(self):
        assert self._result().total_cost() == 4.0

    def test_len(self):
        assert len(self._result()) == 2
