"""Tests for workload generation and batch execution."""

import pytest

from repro.algorithms.ta import TA
from repro.bench.workloads import QuerySpec, random_workload, run_workload
from repro.data.generators import uniform
from repro.scoring.functions import Min
from repro.sources.cost import CostModel


class TestRandomWorkload:
    def test_size_and_arity(self):
        workload = random_workload(3, 25, seed=1)
        assert len(workload) == 25
        assert all(spec.fn.arity == 3 for spec in workload)

    def test_deterministic(self):
        a = random_workload(2, 10, seed=4)
        b = random_workload(2, 10, seed=4)
        assert [(s.fn.name, s.k) for s in a] == [(s.fn.name, s.k) for s in b]

    def test_k_choices_respected(self):
        workload = random_workload(2, 50, seed=2, k_choices=(3, 7))
        assert {spec.k for spec in workload} <= {3, 7}

    def test_mixes_function_families(self):
        workload = random_workload(2, 60, seed=3)
        families = {spec.fn.name.split("[")[0] for spec in workload}
        assert len(families) >= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            random_workload(0, 5)
        with pytest.raises(ValueError):
            random_workload(2, 0)


class TestRunWorkload:
    def test_aggregates_and_verifies(self):
        data = uniform(150, 2, seed=5)
        workload = [QuerySpec(Min(2), 3), QuerySpec(Min(2), 5)]
        report = run_workload(
            data, CostModel.uniform(2), workload, TA, label="ta"
        )
        assert report.queries == 2
        assert report.failures == 0
        assert report.total_access_cost > 0
        assert report.total_sorted + report.total_random > 0
        assert report.mean_access_cost == pytest.approx(
            report.total_access_cost / 2
        )
        assert len(report.results) == 2

    def test_planning_overhead_from_nc(self):
        from repro.bench.harness import nc_with_dummy_planner
        from repro.optimizer.search import Strategies

        data = uniform(150, 2, seed=6)
        workload = [QuerySpec(Min(2), 3)]
        report = run_workload(
            data,
            CostModel.uniform(2),
            workload,
            lambda: nc_with_dummy_planner(scheme=Strategies(), sample_size=60),
            label="nc",
        )
        assert report.planning_runs > 0
        assert report.failures == 0

    def test_fixed_algorithms_report_zero_planning(self):
        data = uniform(100, 2, seed=7)
        report = run_workload(
            data, CostModel.uniform(2), [QuerySpec(Min(2), 2)], TA
        )
        assert report.planning_runs == 0

    def test_probe_only_scenario_auto_universe(self):
        from repro.algorithms.mpro import MPro

        data = uniform(100, 2, seed=8)
        report = run_workload(
            data, CostModel.no_sorted(2), [QuerySpec(Min(2), 2)], MPro
        )
        assert report.failures == 0
        assert report.total_sorted == 0
