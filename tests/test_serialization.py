"""Tests for JSON serialization of plans, cost models and results."""

import json
import math

import pytest

from repro.optimizer.plan import SRGPlan
from repro.serialization import (
    cost_model_from_dict,
    cost_model_to_dict,
    plan_from_dict,
    plan_from_json,
    plan_to_dict,
    plan_to_json,
    ranking_from_dict,
    result_to_dict,
)
from repro.sources.cost import CostModel


class TestCostModelRoundTrip:
    def test_plain_costs(self):
        model = CostModel((1.0, 2.5), (0.0, 10.0))
        again = cost_model_from_dict(cost_model_to_dict(model))
        assert again == model

    def test_infinities_survive_strict_json(self):
        model = CostModel.no_random(2)
        encoded = json.dumps(cost_model_to_dict(model))  # strict JSON
        assert "Infinity" not in encoded
        again = cost_model_from_dict(json.loads(encoded))
        assert math.isinf(again.random_cost(0))
        assert again == model

    def test_validation_on_decode(self):
        with pytest.raises(ValueError):
            cost_model_from_dict({"cs": ["inf"], "cr": ["inf"]})


class TestPlanRoundTrip:
    def test_full_round_trip(self):
        plan = SRGPlan(
            depths=(0.25, 1.0),
            schedule=(1, 0),
            estimated_cost=123.5,
            estimator_runs=42,
            notes={"scheme": "HClimb(restarts=3)", "sample_size": 100},
        )
        again = plan_from_json(plan_to_json(plan))
        assert again == plan
        assert again.notes == plan.notes
        assert again.estimator_runs == 42

    def test_missing_optionals_default(self):
        again = plan_from_dict({"depths": [0.5], "schedule": [0]})
        assert again.estimated_cost is None
        assert again.estimator_runs == 0
        assert again.notes == {}

    def test_validation_on_decode(self):
        with pytest.raises(ValueError):
            plan_from_dict({"depths": [1.5], "schedule": [0]})
        with pytest.raises(ValueError):
            plan_from_dict({"depths": [0.5, 0.5], "schedule": [0, 0]})

    def test_json_is_deterministic(self):
        plan = SRGPlan(depths=(0.5,), schedule=(0,))
        assert plan_to_json(plan) == plan_to_json(plan)

    def test_persisted_plan_is_runnable(self, small_uniform):
        """The real use case: optimize once, persist, reload, execute."""
        from repro.algorithms.nc import NC
        from tests.conftest import assert_valid_topk, mw_over
        from repro.scoring.functions import Min

        original = SRGPlan(depths=(0.6, 0.6), schedule=(0, 1))
        reloaded = plan_from_json(plan_to_json(original))
        mw = mw_over(small_uniform)
        result = NC(plan=reloaded).run(mw, Min(2), 3)
        assert_valid_topk(result, small_uniform, Min(2), 3)


class TestResultEncoding:
    def _result(self, small_uniform):
        from repro.algorithms.ta import TA
        from tests.conftest import mw_over
        from repro.scoring.functions import Min

        mw = mw_over(small_uniform)
        return TA().run(mw, Min(2), 3)

    def test_encodes_ranking_and_accounting(self, small_uniform):
        result = self._result(small_uniform)
        data = result_to_dict(result)
        assert data["algorithm"] == "TA"
        assert len(data["ranking"]) == 3
        assert data["total_cost"] == result.total_cost()
        json.dumps(data)  # strictly JSON-safe

    def test_ranking_rebuilds(self, small_uniform):
        result = self._result(small_uniform)
        ranking = ranking_from_dict(result_to_dict(result))
        assert [entry.obj for entry in ranking] == result.objects
        assert [entry.score for entry in ranking] == pytest.approx(result.scores)

    def test_non_json_metadata_stringified(self, small_uniform):
        result = self._result(small_uniform)
        result.metadata["weird"] = object()
        data = result_to_dict(result)
        json.dumps(data)
        assert isinstance(data["metadata"]["weird"], str)
