"""Tests for CallbackSource: the adopter-facing Source adapter."""

import pytest

from repro.core.framework import FrameworkNC
from repro.core.policies import SRGPolicy
from repro.data.generators import uniform
from repro.exceptions import CapabilityError
from repro.scoring.functions import Min
from repro.sources.callback import CallbackSource
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware
from tests.conftest import assert_valid_topk


def sources_from_dataset(dataset):
    """Wrap a dataset's columns as user callables (the adoption pattern)."""

    def factory(pred):
        def make_iter():
            order = dataset.sorted_order(pred)
            return iter(
                [(int(obj), dataset.score(int(obj), pred)) for obj in order]
            )

        return make_iter

    return [
        CallbackSource(
            sorted_factory=factory(i),
            random_fn=lambda obj, i=i: dataset.score(obj, i),
            name=f"svc-{i}",
        )
        for i in range(dataset.m)
    ]


class TestContract:
    def test_needs_some_capability(self):
        with pytest.raises(ValueError):
            CallbackSource()

    def test_sorted_only(self):
        src = CallbackSource(sorted_factory=lambda: iter([(0, 0.5)]))
        assert src.supports_sorted and not src.supports_random
        with pytest.raises(CapabilityError):
            src.random_access(0)

    def test_random_only(self):
        src = CallbackSource(random_fn=lambda obj: 0.5)
        assert src.supports_random and not src.supports_sorted
        with pytest.raises(CapabilityError):
            src.sorted_access()

    def test_iteration_and_exhaustion(self):
        src = CallbackSource(
            sorted_factory=lambda: iter([(3, 0.9), (1, 0.4)])
        )
        assert src.sorted_access() == (3, 0.9)
        assert src.last_seen == 0.9
        assert src.sorted_access() == (1, 0.4)
        assert not src.exhausted
        assert src.sorted_access() is None
        assert src.exhausted
        assert src.last_seen == 0.0
        assert src.depth == 2

    def test_reset_restarts_iterator(self):
        src = CallbackSource(sorted_factory=lambda: iter([(0, 0.7)]))
        assert src.sorted_access() == (0, 0.7)
        src.reset()
        assert src.depth == 0
        assert src.last_seen == 1.0
        assert src.sorted_access() == (0, 0.7)


class TestValidation:
    def test_out_of_order_iterator_rejected(self):
        src = CallbackSource(
            sorted_factory=lambda: iter([(0, 0.4), (1, 0.9)])
        )
        src.sorted_access()
        with pytest.raises(ValueError, match="not nonincreasing"):
            src.sorted_access()

    def test_duplicate_object_rejected(self):
        src = CallbackSource(
            sorted_factory=lambda: iter([(0, 0.9), (0, 0.8)])
        )
        src.sorted_access()
        with pytest.raises(ValueError, match="repeated object"):
            src.sorted_access()

    def test_out_of_range_scores_rejected(self):
        src = CallbackSource(sorted_factory=lambda: iter([(0, 1.5)]))
        with pytest.raises(ValueError, match="outside"):
            src.sorted_access()
        probe = CallbackSource(random_fn=lambda obj: -0.1)
        with pytest.raises(ValueError, match="outside"):
            probe.random_access(0)


class TestEndToEnd:
    def test_framework_runs_over_callback_sources(self):
        data = uniform(60, 2, seed=71)
        sources = sources_from_dataset(data)
        middleware = Middleware(
            sources, CostModel.uniform(2), n_objects=data.n
        )
        result = FrameworkNC(
            middleware, Min(2), 4, SRGPolicy([0.6, 0.6])
        ).run()
        assert_valid_topk(result, data, Min(2), 4)

    def test_same_cost_as_simulated_sources(self):
        """Wrapping callables must be observationally identical to the
        built-in simulated sources."""
        data = uniform(60, 2, seed=72)
        mw_callback = Middleware(
            sources_from_dataset(data), CostModel.uniform(2), n_objects=data.n
        )
        FrameworkNC(mw_callback, Min(2), 4, SRGPolicy([0.6, 0.6])).run()

        mw_simulated = Middleware.over(data, CostModel.uniform(2))
        FrameworkNC(mw_simulated, Min(2), 4, SRGPolicy([0.6, 0.6])).run()

        assert (
            mw_callback.stats.snapshot() == mw_simulated.stats.snapshot()
        )

    def test_middleware_requires_explicit_n(self):
        data = uniform(10, 2, seed=73)
        with pytest.raises(ValueError, match="n_objects"):
            Middleware(sources_from_dataset(data), CostModel.uniform(2))
