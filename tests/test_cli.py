"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestScenarios:
    def test_lists_all_builtins(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("S1", "S2", "Q1", "Q2", "uniform", "no-ra", "zero-ra"):
            assert name in out


class TestCompare:
    def test_compare_on_s2(self, capsys):
        assert main(["compare", "--scenario", "S2", "--algorithms", "NC,TA"]) == 0
        out = capsys.readouterr().out
        assert "NC" in out and "TA" in out
        assert "% of best" in out

    def test_incapable_algorithms_skipped(self, capsys):
        # TA cannot run without random access; NRA carries the cell.
        assert (
            main(["compare", "--scenario", "no-ra", "--algorithms", "TA,NRA"]) == 0
        )
        out = capsys.readouterr().out
        assert "NRA" in out
        assert "TA " not in out

    def test_unknown_scenario(self, capsys):
        assert main(["compare", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_unknown_algorithm(self, capsys):
        assert (
            main(["compare", "--scenario", "S1", "--algorithms", "XX"]) == 2
        )
        assert "unknown algorithms" in capsys.readouterr().err

    def test_nothing_runnable(self, capsys):
        assert (
            main(["compare", "--scenario", "no-ra", "--algorithms", "TA"]) == 2
        )
        assert "none of the requested" in capsys.readouterr().err


class TestOptimize:
    def test_optimize_s2(self, capsys):
        assert main(["optimize", "--scenario", "S2", "--scheme", "naive"]) == 0
        out = capsys.readouterr().out
        assert "plan" in out and "Delta" in out
        assert "estimator simulation runs" in out

    def test_unknown_scheme(self, capsys):
        assert main(["optimize", "--scenario", "S1", "--scheme", "magic"]) == 2
        assert "unknown scheme" in capsys.readouterr().err


class TestQuery:
    def test_end_to_end(self, capsys):
        code = main(
            [
                "query",
                "SELECT * FROM r ORDER BY min(a, b) STOP AFTER 3",
                "--n",
                "200",
                "--seed",
                "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "min(a, b)" in out
        assert "total access cost" in out
        assert out.count("\n") > 5  # the ranking table printed

    def test_malformed_query(self, capsys):
        assert main(["query", "SELECT FROM"]) == 2
        assert "error" in capsys.readouterr().err


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["compare", "--scenario", "S1"])
        assert args.algorithms == "NC,TA,CA,NRA"
