"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestScenarios:
    def test_lists_all_builtins(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("S1", "S2", "Q1", "Q2", "uniform", "no-ra", "zero-ra"):
            assert name in out


class TestCompare:
    def test_compare_on_s2(self, capsys):
        assert main(["compare", "--scenario", "S2", "--algorithms", "NC,TA"]) == 0
        out = capsys.readouterr().out
        assert "NC" in out and "TA" in out
        assert "% of best" in out

    def test_incapable_algorithms_skipped(self, capsys):
        # TA cannot run without random access; NRA carries the cell.
        assert (
            main(["compare", "--scenario", "no-ra", "--algorithms", "TA,NRA"]) == 0
        )
        out = capsys.readouterr().out
        assert "NRA" in out
        assert "TA " not in out

    def test_unknown_scenario(self, capsys):
        assert main(["compare", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_unknown_algorithm(self, capsys):
        assert (
            main(["compare", "--scenario", "S1", "--algorithms", "XX"]) == 2
        )
        assert "unknown algorithms" in capsys.readouterr().err

    def test_nothing_runnable(self, capsys):
        assert (
            main(["compare", "--scenario", "no-ra", "--algorithms", "TA"]) == 2
        )
        assert "none of the requested" in capsys.readouterr().err


class TestOptimize:
    def test_optimize_s2(self, capsys):
        assert main(["optimize", "--scenario", "S2", "--scheme", "naive"]) == 0
        out = capsys.readouterr().out
        assert "plan" in out and "Delta" in out
        assert "estimator simulation runs" in out

    def test_unknown_scheme(self, capsys):
        assert main(["optimize", "--scenario", "S1", "--scheme", "magic"]) == 2
        assert "unknown scheme" in capsys.readouterr().err


class TestQuery:
    def test_end_to_end(self, capsys):
        code = main(
            [
                "query",
                "SELECT * FROM r ORDER BY min(a, b) STOP AFTER 3",
                "--n",
                "200",
                "--seed",
                "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "min(a, b)" in out
        assert "total access cost" in out
        assert out.count("\n") > 5  # the ranking table printed

    def test_malformed_query(self, capsys):
        assert main(["query", "SELECT FROM"]) == 2
        assert "error" in capsys.readouterr().err


class TestFaultFlags:
    def test_compare_under_faults_stays_correct_and_shows_retries(self, capsys):
        code = main(
            [
                "compare",
                "--scenario",
                "S1",
                "--algorithms",
                "TA,NRA",
                "--fault-rate",
                "0.1",
                "--retry-max",
                "6",
                "--fault-seed",
                "2",
            ]
        )
        assert code == 0  # exit 0 means every answer verified correct
        out = capsys.readouterr().out
        assert "retries" in out
        assert "transient rate 0.1" in out
        assert "NO" not in out

    def test_compare_without_faults_has_no_retry_column(self, capsys):
        assert main(["compare", "--scenario", "S1", "--algorithms", "TA"]) == 0
        out = capsys.readouterr().out
        assert "retries" not in out
        assert "faults:" not in out

    def test_query_reports_fault_accounting(self, capsys):
        code = main(
            [
                "query",
                "SELECT * FROM r ORDER BY min(a, b) STOP AFTER 3",
                "--n",
                "150",
                "--fault-rate",
                "0.2",
                "--retry-max",
                "8",
                "--fault-seed",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "retries]" in out
        assert "faults" in out

    def test_fault_run_matches_fault_free_answer(self, capsys):
        query = ["query", "SELECT * FROM r ORDER BY min(a, b) STOP AFTER 3",
                 "--n", "150", "--seed", "9"]
        assert main(query) == 0
        clean = capsys.readouterr().out
        assert main(query + ["--fault-rate", "0.1", "--retry-max", "6"]) == 0
        chaos = capsys.readouterr().out
        # Same ranking table lines; only the cost line differs.
        clean_table = [l for l in clean.splitlines() if l.strip().startswith(("1", "2", "3"))]
        chaos_table = [l for l in chaos.splitlines() if l.strip().startswith(("1", "2", "3"))]
        assert clean_table == chaos_table

    def test_fault_flag_defaults(self):
        args = build_parser().parse_args(["compare", "--scenario", "S1"])
        assert args.fault_rate == 0.0
        assert args.retry_max == 5
        assert args.timeout is None
        assert args.fault_seed == 0


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["compare", "--scenario", "S1"])
        assert args.algorithms == "NC,TA,CA,NRA"


class TestObservability:
    QUERY = "SELECT * FROM r ORDER BY min(a, b) STOP AFTER 3"

    def test_query_writes_trace_and_metrics(self, capsys, tmp_path):
        trace_path = str(tmp_path / "run.jsonl")
        metrics_path = str(tmp_path / "metrics.json")
        code = main(
            [
                "query",
                self.QUERY,
                "--n",
                "120",
                "--fault-rate",
                "0.1",
                "--trace",
                trace_path,
                "--metrics-out",
                metrics_path,
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "trace:" in err and "metrics snapshot ->" in err

        import json as _json

        from repro.obs import read_trace

        events = read_trace(trace_path)
        accesses = [e for e in events if e["event"] == "access"]
        assert accesses, "trace must narrate charged accesses"
        snapshot = _json.loads(open(metrics_path).read())
        assert snapshot["counters"]
        # The written artifacts reconcile with each other.
        total = sum(
            v
            for k, v in snapshot["counters"].items()
            if k.startswith("repro_accesses_total")
        )
        assert total == len(accesses)

    def test_metrics_prom_extension_renders_prometheus(self, tmp_path):
        metrics_path = str(tmp_path / "metrics.prom")
        assert (
            main(
                ["query", self.QUERY, "--n", "80", "--metrics-out", metrics_path]
            )
            == 0
        )
        text = open(metrics_path).read()
        assert "# TYPE repro_accesses_total counter" in text

    def test_trace_subcommand_renders_timeline(self, capsys, tmp_path):
        trace_path = str(tmp_path / "run.jsonl")
        assert (
            main(["query", self.QUERY, "--n", "80", "--trace", trace_path]) == 0
        )
        capsys.readouterr()
        assert main(["trace", trace_path, "--width", "32"]) == 0
        out = capsys.readouterr().out
        assert "p0 |" in out and "legend:" in out

    def test_trace_subcommand_rejects_missing_file(self, capsys, tmp_path):
        assert main(["trace", str(tmp_path / "absent.jsonl")]) == 2
        assert "absent.jsonl" in capsys.readouterr().err

    def test_trace_subcommand_rejects_malformed_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"event": "access", "tick": 1}\n{nope\n')
        assert main(["trace", str(bad)]) == 2
        assert "line 2" in capsys.readouterr().err

    def test_obs_flag_defaults(self):
        args = build_parser().parse_args(["query", self.QUERY])
        assert args.trace is None
        assert args.metrics_out is None
