"""Executable spot-checks of the paper's formal results.

Theorem 2 (NC generality) promises: for *any* algorithm there is an NC
counterpart costing no more. The constructive proof replays the arbitrary
algorithm's accesses through NC's necessary-choice filter; here we verify
the theorem's observable consequences:

* a *replay policy* that follows a recorded arbitrary run inside
  Framework NC never needs more accesses than the recording;
* Lemma 1's SR flavour: for concrete runs, a sorted-then-random
  counterpart gathering the same information costs no more.
"""

import pytest

from repro.core.framework import FrameworkNC, FrameworkTG
from repro.core.policies import RandomPolicy, SelectPolicy, SRGPolicy
from repro.data.generators import uniform
from repro.scoring.functions import Avg, Min
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware
from repro.types import AccessType
from tests.conftest import mw_over


class ReplayPolicy(SelectPolicy):
    """Theorem 2's construction: follow a recorded access log, always
    choosing the earliest not-yet-performed recorded access that appears
    among the offered alternatives."""

    def __init__(self, log):
        self.log = list(log)
        self._cursor = 0

    def select(self, alternatives, ctx):
        remaining = self.log[self._cursor :]
        for access in remaining:
            if access in alternatives:
                return access
        # Completeness of alternatives (Section 6.2) guarantees any
        # algorithm that performed a prefix of the log must take one of
        # the offered accesses; if the log has none, the recorded
        # algorithm performed *extra* accesses NC does not need -- take
        # any alternative (it must also appear later in a longer run).
        return alternatives[0]

    def reset(self):
        self._cursor = 0


class TestTheorem2Consequences:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_nc_replay_never_costs_more_than_arbitrary_run(self, seed):
        """Replay a random TG run inside NC: the NC counterpart must halt
        within the recorded budget (Theorem 2's P_j subset invariant)."""
        data = uniform(60, 2, seed=seed)
        fn = Min(2)
        model = CostModel.uniform(2)

        recorder = Middleware.over(data, model, record_log=True)
        FrameworkTG(recorder, fn, 3, RandomPolicy(seed=seed)).run()
        recorded_cost = recorder.stats.total_cost()

        replayer = Middleware.over(data, model)
        result = FrameworkNC(
            replayer, fn, 3, ReplayPolicy(recorder.stats.log)
        ).run()
        assert replayer.stats.total_cost() <= recorded_cost
        assert result.objects == [e.obj for e in data.topk(fn, 3)]

    def test_nc_replay_of_nc_run_is_identical(self):
        """Replaying an NC run through NC reproduces it access for access
        (the framework is deterministic given the policy)."""
        data = uniform(40, 2, seed=9)
        fn = Avg(2)
        first = Middleware.over(data, CostModel.uniform(2), record_log=True)
        FrameworkNC(first, fn, 2, SRGPolicy([0.7, 0.7])).run()

        second = Middleware.over(data, CostModel.uniform(2), record_log=True)
        FrameworkNC(second, fn, 2, ReplayPolicy(first.stats.log)).run()
        assert second.stats.log == first.stats.log


class TestLemma1SRCounterpart:
    def test_sr_counterpart_no_costlier_on_concrete_runs(self):
        """Lemma 1 flavour: interleaved sorted/random policies admit an SR
        counterpart (same depths, sorted first) with no higher cost."""
        data = uniform(200, 2, seed=5)
        fn = Min(2)
        model = CostModel.uniform(2)

        class Interleaved(SelectPolicy):
            """Alternates random-then-sorted whenever both are offered."""

            def __init__(self):
                self._flip = False

            def select(self, alternatives, ctx):
                self._flip = not self._flip
                preferred = (
                    AccessType.RANDOM if self._flip else AccessType.SORTED
                )
                for acc in alternatives:
                    if acc.kind is preferred:
                        return acc
                return alternatives[0]

            def reset(self):
                self._flip = False

        mw_mixed = Middleware.over(data, model)
        FrameworkNC(mw_mixed, fn, 5, Interleaved()).run()

        # The SR counterpart family: sweep depths; its best member must
        # not exceed the interleaved plan's cost.
        best_sr = min(
            self._sr_cost(data, fn, model, (d0, d1))
            for d0 in (0.0, 0.5, 0.75, 1.0)
            for d1 in (0.0, 0.5, 0.75, 1.0)
        )
        assert best_sr <= mw_mixed.stats.total_cost()

    @staticmethod
    def _sr_cost(data, fn, model, depths):
        mw = Middleware.over(data, model)
        FrameworkNC(mw, fn, 5, SRGPolicy(depths)).run()
        return mw.stats.total_cost()


class TestCompletenessProperty:
    def test_alternatives_complete_wrt_continuation(self):
        """Section 6.2: any continuation must intersect the offered
        alternatives -- verified by exhaustively checking that skipping
        ALL alternatives leaves the query unanswered."""
        from repro.core.choices import necessary_choices
        from repro.core.state import ScoreState
        from repro.core.tasks import all_tasks_satisfied, unsatisfied_objects, UNSEEN

        data = uniform(12, 2, seed=2)
        fn = Min(2)
        mw = mw_over(data)
        state = ScoreState(mw, fn)
        # Advance a few steps.
        for _ in range(4):
            obj, score = mw.sorted_access(0)
            state.record(0, obj, score)
        assert not all_tasks_satisfied(state, 2)
        target = unsatisfied_objects(state, 2)[0]
        if target == UNSEEN:
            return  # sorted-only choices; trivially necessary
        choices = set(necessary_choices(state, target))
        # Fulfil everything EXCEPT the target's choices: its task stays
        # unsatisfied, so the query cannot be answered without touching
        # the alternatives.
        for obj in range(data.n):
            if obj == target:
                continue
            if not mw.is_seen(obj):
                continue
            for i in state.undetermined(obj):
                state.record(i, obj, mw.random_access(i, obj))
        assert not state.is_complete(target)
        assert not all_tasks_satisfied(state, 2) or state.is_complete(target)
