"""Tests for the Middleware access layer: metering, rules, introspection."""

import math

import pytest

from repro.data.dataset import Dataset
from repro.data.generators import uniform
from repro.exceptions import (
    CapabilityError,
    DuplicateAccessError,
    ExhaustedSourceError,
    WildGuessError,
)
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware
from repro.sources.simulated import SimulatedSource
from tests.conftest import mw_over


class TestConstruction:
    def test_over_builds_matching_sources(self, ds1):
        mw = Middleware.over(ds1, CostModel.no_random(2))
        assert mw.m == 2
        assert mw.n_objects == 3
        assert not mw.supports_random(0)

    def test_width_mismatch(self, ds1):
        with pytest.raises(ValueError):
            Middleware.over(ds1, CostModel.uniform(3))

    def test_capability_mismatch_detected(self, ds1):
        # Cost model prices random access but the source cannot serve it.
        sources = [
            SimulatedSource(ds1, 0, random_capable=False),
            SimulatedSource(ds1, 1),
        ]
        with pytest.raises(CapabilityError):
            Middleware(sources, CostModel.uniform(2))

    def test_n_objects_derived_from_simulated_sources(self, ds1):
        sources = [SimulatedSource(ds1, 0), SimulatedSource(ds1, 1)]
        mw = Middleware(sources, CostModel.uniform(2))
        assert mw.n_objects == 3


class TestSortedAccessRules:
    def test_meters_cost(self, ds1):
        mw = Middleware.over(ds1, CostModel.uniform(2, cs=3.0))
        mw.sorted_access(0)
        assert mw.stats.total_cost() == 3.0

    def test_marks_object_seen(self, ds1):
        mw = mw_over(ds1)
        obj, _ = mw.sorted_access(0)
        assert mw.is_seen(obj)
        assert obj in mw.seen

    def test_exhausted_raises_in_strict_mode(self, ds1):
        mw = mw_over(ds1)
        for _ in range(3):
            mw.sorted_access(0)
        with pytest.raises(ExhaustedSourceError):
            mw.sorted_access(0)

    def test_exhausted_charges_in_permissive_mode(self, ds1):
        mw = mw_over(ds1, strict=False)
        for _ in range(3):
            mw.sorted_access(0)
        assert mw.sorted_access(0) is None
        assert mw.stats.sorted_counts[0] == 4

    def test_unsupported_capability(self, ds1):
        mw = Middleware.over(ds1, CostModel.no_sorted(2), no_wild_guesses=False)
        with pytest.raises(CapabilityError):
            mw.sorted_access(0)


class TestRandomAccessRules:
    def test_wild_guess_rejected(self, ds1):
        mw = mw_over(ds1)
        with pytest.raises(WildGuessError):
            mw.random_access(1, 0)

    def test_probe_after_seen_allowed(self, ds1):
        mw = mw_over(ds1)
        obj, _ = mw.sorted_access(0)
        score = mw.random_access(1, obj)
        assert score == pytest.approx(ds1.score(obj, 1))

    def test_wild_guess_allowed_when_disabled(self, ds1):
        mw = mw_over(ds1, no_wild_guesses=False)
        assert mw.random_access(1, 0) == pytest.approx(ds1.score(0, 1))

    def test_duplicate_probe_rejected(self, ds1):
        mw = mw_over(ds1)
        obj, _ = mw.sorted_access(0)
        mw.random_access(1, obj)
        with pytest.raises(DuplicateAccessError):
            mw.random_access(1, obj)

    def test_probe_of_sorted_delivered_score_rejected(self, ds1):
        # The object's p_0 score arrived with the sorted access; fetching
        # it again by probe is a duplicate retrieval.
        mw = mw_over(ds1)
        obj, _ = mw.sorted_access(0)
        with pytest.raises(DuplicateAccessError):
            mw.random_access(0, obj)

    def test_duplicates_allowed_in_permissive_mode(self, ds1):
        mw = mw_over(ds1, strict=False, no_wild_guesses=False)
        mw.random_access(1, 0)
        mw.random_access(1, 0)
        assert mw.stats.random_counts[1] == 2

    def test_meters_cost(self, ds1):
        mw = Middleware.over(
            ds1, CostModel.uniform(2, cs=1.0, cr=7.0), no_wild_guesses=False
        )
        mw.random_access(0, 0)
        assert mw.stats.total_cost() == 7.0


class TestIntrospection:
    def test_last_seen_tracks_source(self, ds1):
        mw = mw_over(ds1)
        assert mw.last_seen(0) == 1.0
        _, score = mw.sorted_access(0)
        assert mw.last_seen(0) == pytest.approx(score)

    def test_depth_and_exhausted(self, ds1):
        mw = mw_over(ds1)
        mw.sorted_access(0)
        assert mw.depth(0) == 1
        assert not mw.exhausted(0)

    def test_predicate_lists(self, ds1):
        model = CostModel((1.0, math.inf), (math.inf, 1.0))
        mw = Middleware.over(ds1, model)
        assert mw.sorted_predicates() == [0]
        assert mw.random_predicates() == [1]

    def test_object_ids_blocked_under_nwg(self, ds1):
        mw = mw_over(ds1)
        with pytest.raises(WildGuessError):
            mw.object_ids()

    def test_object_ids_available_with_universe(self, ds1):
        mw = mw_over(ds1, no_wild_guesses=False)
        assert list(mw.object_ids()) == [0, 1, 2]

    def test_was_delivered(self, ds1):
        mw = mw_over(ds1)
        obj, _ = mw.sorted_access(0)
        assert mw.was_delivered(0, obj)
        assert not mw.was_delivered(1, obj)


class TestPerformDispatch:
    def test_perform_sorted(self, ds1):
        from repro.types import Access

        mw = mw_over(ds1)
        obj, score = mw.perform(Access.sorted(0))
        assert score == pytest.approx(0.70)

    def test_perform_random(self, ds1):
        from repro.types import Access

        mw = mw_over(ds1)
        obj, _ = mw.sorted_access(0)
        assert mw.perform(Access.random(1, obj)) == pytest.approx(
            ds1.score(obj, 1)
        )


class TestReset:
    def test_reset_clears_everything(self, ds1):
        mw = mw_over(ds1, record_log=True)
        obj, _ = mw.sorted_access(0)
        mw.random_access(1, obj)
        mw.reset()
        assert mw.stats.total_accesses == 0
        assert not mw.seen
        assert mw.last_seen(0) == 1.0
        # A full rerun is possible without duplicate errors.
        obj2, _ = mw.sorted_access(0)
        assert obj2 == obj
        mw.random_access(1, obj2)


class TestFullScanDeliversEverything:
    def test_exhausting_one_list_sees_all_objects(self):
        data = uniform(40, 2, seed=5)
        mw = mw_over(data)
        while not mw.exhausted(0):
            mw.sorted_access(0)
        assert len(mw.seen) == 40
