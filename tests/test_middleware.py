"""Tests for the Middleware access layer: metering, rules, introspection."""

import math

import pytest

from repro.data.dataset import Dataset
from repro.data.generators import uniform
from repro.exceptions import (
    CapabilityError,
    DuplicateAccessError,
    ExhaustedSourceError,
    WildGuessError,
)
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware
from repro.sources.simulated import SimulatedSource
from tests.conftest import mw_over


class TestConstruction:
    def test_over_builds_matching_sources(self, ds1):
        mw = Middleware.over(ds1, CostModel.no_random(2))
        assert mw.m == 2
        assert mw.n_objects == 3
        assert not mw.supports_random(0)

    def test_width_mismatch(self, ds1):
        with pytest.raises(ValueError):
            Middleware.over(ds1, CostModel.uniform(3))

    def test_capability_mismatch_detected(self, ds1):
        # Cost model prices random access but the source cannot serve it.
        sources = [
            SimulatedSource(ds1, 0, random_capable=False),
            SimulatedSource(ds1, 1),
        ]
        with pytest.raises(CapabilityError):
            Middleware(sources, CostModel.uniform(2))

    def test_n_objects_derived_from_simulated_sources(self, ds1):
        sources = [SimulatedSource(ds1, 0), SimulatedSource(ds1, 1)]
        mw = Middleware(sources, CostModel.uniform(2))
        assert mw.n_objects == 3


class TestSortedAccessRules:
    def test_meters_cost(self, ds1):
        mw = Middleware.over(ds1, CostModel.uniform(2, cs=3.0))
        mw.sorted_access(0)
        assert mw.stats.total_cost() == 3.0

    def test_marks_object_seen(self, ds1):
        mw = mw_over(ds1)
        obj, _ = mw.sorted_access(0)
        assert mw.is_seen(obj)
        assert obj in mw.seen

    def test_exhausted_raises_in_strict_mode(self, ds1):
        mw = mw_over(ds1)
        for _ in range(3):
            mw.sorted_access(0)
        with pytest.raises(ExhaustedSourceError):
            mw.sorted_access(0)

    def test_exhausted_charges_in_permissive_mode(self, ds1):
        mw = mw_over(ds1, strict=False)
        for _ in range(3):
            mw.sorted_access(0)
        assert mw.sorted_access(0) is None
        assert mw.stats.sorted_counts[0] == 4

    def test_unsupported_capability(self, ds1):
        mw = Middleware.over(ds1, CostModel.no_sorted(2), no_wild_guesses=False)
        with pytest.raises(CapabilityError):
            mw.sorted_access(0)


class TestRandomAccessRules:
    def test_wild_guess_rejected(self, ds1):
        mw = mw_over(ds1)
        with pytest.raises(WildGuessError):
            mw.random_access(1, 0)

    def test_probe_after_seen_allowed(self, ds1):
        mw = mw_over(ds1)
        obj, _ = mw.sorted_access(0)
        score = mw.random_access(1, obj)
        assert score == pytest.approx(ds1.score(obj, 1))

    def test_wild_guess_allowed_when_disabled(self, ds1):
        mw = mw_over(ds1, no_wild_guesses=False)
        assert mw.random_access(1, 0) == pytest.approx(ds1.score(0, 1))

    def test_duplicate_probe_rejected(self, ds1):
        mw = mw_over(ds1)
        obj, _ = mw.sorted_access(0)
        mw.random_access(1, obj)
        with pytest.raises(DuplicateAccessError):
            mw.random_access(1, obj)

    def test_probe_of_sorted_delivered_score_rejected(self, ds1):
        # The object's p_0 score arrived with the sorted access; fetching
        # it again by probe is a duplicate retrieval.
        mw = mw_over(ds1)
        obj, _ = mw.sorted_access(0)
        with pytest.raises(DuplicateAccessError):
            mw.random_access(0, obj)

    def test_duplicates_allowed_in_permissive_mode(self, ds1):
        mw = mw_over(ds1, strict=False, no_wild_guesses=False)
        mw.random_access(1, 0)
        mw.random_access(1, 0)
        assert mw.stats.random_counts[1] == 2

    def test_meters_cost(self, ds1):
        mw = Middleware.over(
            ds1, CostModel.uniform(2, cs=1.0, cr=7.0), no_wild_guesses=False
        )
        mw.random_access(0, 0)
        assert mw.stats.total_cost() == 7.0


class TestIntrospection:
    def test_last_seen_tracks_source(self, ds1):
        mw = mw_over(ds1)
        assert mw.last_seen(0) == 1.0
        _, score = mw.sorted_access(0)
        assert mw.last_seen(0) == pytest.approx(score)

    def test_depth_and_exhausted(self, ds1):
        mw = mw_over(ds1)
        mw.sorted_access(0)
        assert mw.depth(0) == 1
        assert not mw.exhausted(0)

    def test_predicate_lists(self, ds1):
        model = CostModel((1.0, math.inf), (math.inf, 1.0))
        mw = Middleware.over(ds1, model)
        assert mw.sorted_predicates() == [0]
        assert mw.random_predicates() == [1]

    def test_object_ids_blocked_under_nwg(self, ds1):
        mw = mw_over(ds1)
        with pytest.raises(WildGuessError):
            mw.object_ids()

    def test_object_ids_available_with_universe(self, ds1):
        mw = mw_over(ds1, no_wild_guesses=False)
        assert list(mw.object_ids()) == [0, 1, 2]

    def test_was_delivered(self, ds1):
        mw = mw_over(ds1)
        obj, _ = mw.sorted_access(0)
        assert mw.was_delivered(0, obj)
        assert not mw.was_delivered(1, obj)


class TestPerformDispatch:
    def test_perform_sorted(self, ds1):
        from repro.types import Access

        mw = mw_over(ds1)
        obj, score = mw.perform(Access.sorted(0))
        assert score == pytest.approx(0.70)

    def test_perform_random(self, ds1):
        from repro.types import Access

        mw = mw_over(ds1)
        obj, _ = mw.sorted_access(0)
        assert mw.perform(Access.random(1, obj)) == pytest.approx(
            ds1.score(obj, 1)
        )


class TestReset:
    def test_reset_clears_everything(self, ds1):
        mw = mw_over(ds1, record_log=True)
        obj, _ = mw.sorted_access(0)
        mw.random_access(1, obj)
        mw.reset()
        assert mw.stats.total_accesses == 0
        assert not mw.seen
        assert mw.last_seen(0) == 1.0
        # A full rerun is possible without duplicate errors.
        obj2, _ = mw.sorted_access(0)
        assert obj2 == obj
        mw.random_access(1, obj2)

    def test_reset_restores_full_budget(self, ds1):
        mw = mw_over(ds1, budget=5.0)
        mw.sorted_access(0)
        mw.sorted_access(1)
        assert mw.remaining_budget() == 3.0
        mw.reset()
        assert mw.remaining_budget() == 5.0
        assert mw.budget == 5.0

    def test_reset_zeroes_fault_accounting(self):
        from repro.faults import FaultProfile, RetryPolicy, chaos_middleware

        data = uniform(40, 2, seed=6)
        mw = chaos_middleware(
            data,
            CostModel.uniform(2),
            FaultProfile.transient(0.4),
            seed=3,
            retry_policy=RetryPolicy(max_attempts=10),
        )
        for _ in range(10):
            mw.sorted_access(0)
        assert mw.stats.total_retries > 0
        mw.reset()
        assert mw.stats.total_retries == 0
        assert mw.stats.total_faults == 0
        assert mw.stats.backoff_time == 0.0
        assert mw.stats.total_cost() == 0.0

    def test_reset_rewinds_breakers_and_jitter_stream(self):
        from repro.faults import (
            BreakerState,
            FaultProfile,
            RetryPolicy,
            chaos_middleware,
        )
        from repro.exceptions import SourceUnavailableError
        from repro.types import AccessType

        data = uniform(40, 2, seed=6)

        def spend(mw):
            with pytest.raises(SourceUnavailableError):
                mw.sorted_access(0)
            return mw.stats.total_cost()

        mw = chaos_middleware(
            data,
            CostModel.uniform(2),
            FaultProfile(dead=True),
            retry_policy=RetryPolicy(max_attempts=2),
        )
        first = spend(mw)
        assert mw.breaker_state(0, AccessType.SORTED) is BreakerState.OPEN
        mw.reset()
        assert mw.breaker_state(0, AccessType.SORTED) is BreakerState.CLOSED
        assert mw.access_allowed(0, AccessType.SORTED)
        assert mw.degraded_predicates() == []
        # The rerun replays bit-for-bit: same charge, same breaker trip.
        assert spend(mw) == first

    def test_reset_replays_chaos_run_exactly(self):
        from repro.faults import FaultProfile, RetryPolicy, chaos_middleware

        data = uniform(40, 2, seed=6)
        mw = chaos_middleware(
            data,
            CostModel.uniform(2),
            FaultProfile.transient(0.3),
            seed=12,
            retry_policy=RetryPolicy(max_attempts=6),
        )

        def run():
            out = [mw.sorted_access(0) for _ in range(12)]
            return out, mw.stats.total_cost(), mw.stats.backoff_time

        first = run()
        mw.reset()
        assert run() == first

    def test_reset_clears_cost_monitor(self):
        from repro.faults import FaultProfile, RetryPolicy, chaos_middleware
        from repro.sources.monitor import CostMonitor
        from repro.types import AccessType

        costs = CostModel.uniform(2)
        monitor = CostMonitor(costs)
        mw = chaos_middleware(
            uniform(30, 2, seed=8),
            costs,
            FaultProfile(),
            retry_policy=RetryPolicy(),
            monitor=monitor,
        )
        mw.sorted_access(0)
        assert monitor.observations(0, AccessType.SORTED) == 1
        mw.reset()
        assert monitor.observations(0, AccessType.SORTED) == 0


class TestFullScanDeliversEverything:
    def test_exhausting_one_list_sees_all_objects(self):
        data = uniform(40, 2, seed=5)
        mw = mw_over(data)
        while not mw.exhausted(0):
            mw.sorted_access(0)
        assert len(mw.seen) == 40
