"""Runtime contract checking (repro.contracts, docs/LINTS.md).

Healthy runs must pass with the checker armed and nonzero check counts;
deliberately broken components -- a source violating its sorted order, a
source returning out-of-range scores, a non-monotone scoring function --
must raise ContractViolationError instead of silently corrupting the
answer.
"""

from typing import Sequence

import pytest

from repro.algorithms import NRA, TA
from repro.bench.harness import nc_with_dummy_planner
from repro.contracts import ContractChecker, env_enabled, resolve_checker
from repro.data.generators import uniform
from repro.exceptions import ContractViolationError
from repro.scoring.functions import Avg, Min, ScoringFunction
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware
from repro.sources.simulated import SimulatedSource


class OutOfOrderSource(SimulatedSource):
    """A 'sorted' source that actually delivers in object-id order.

    The scores it serves are correct, but the stream is not
    non-increasing -- the Section 3.2 sorted-access contract is broken,
    so every unseen-object bound derived from its l_i is unsound.
    """

    def sorted_access(self):
        if self._cursor >= self.size:
            self._last_seen = 0.0
            return None
        obj = self._cursor
        self._cursor += 1
        score = self._dataset.score(obj, self._predicate)
        self._last_seen = score if self._cursor < self.size else 0.0
        return obj, score


class OutOfRangeSource(SimulatedSource):
    """A source whose random accesses return scores above 1."""

    def random_access(self, obj: int) -> float:
        return super().random_access(obj) + 1.5


class NonMonotone(ScoringFunction):
    """F = 1 - avg: decreasing, so Theorem 1's bounds are meaningless."""

    def __init__(self, arity: int):
        super().__init__(arity, f"antiavg[{arity}]")

    def evaluate(self, scores: Sequence[float]) -> float:
        return 1.0 - sum(scores) / self.arity


def _middleware(data, contracts=True, source_cls=SimulatedSource, **kwargs):
    costs = CostModel.uniform(data.m)
    sources = [source_cls(data, i) for i in range(data.m)]
    return Middleware(sources, costs, contracts=contracts, **kwargs)


class TestCheckerUnits:
    def test_last_seen_must_not_rise(self):
        checker = ContractChecker()
        checker.observe_last_seen(0, 0.8)
        checker.observe_last_seen(0, 0.5)  # falling is fine
        with pytest.raises(ContractViolationError, match="rose"):
            checker.observe_last_seen(0, 0.7)

    def test_sorted_stream_must_be_nonincreasing(self):
        checker = ContractChecker()
        checker.observe_sorted(1, 0.9, 0.9)
        with pytest.raises(ContractViolationError, match="non-increasing"):
            checker.observe_sorted(1, 0.95, 0.95)

    def test_threshold_must_not_rise(self):
        checker = ContractChecker()
        checker.observe_threshold(0.6)
        with pytest.raises(ContractViolationError, match="threshold rose"):
            checker.observe_threshold(0.61)

    def test_scores_must_be_in_unit_interval(self):
        checker = ContractChecker()
        checker.check_score(0, 7, 1.0)
        with pytest.raises(ContractViolationError, match="outside"):
            checker.check_score(0, 7, 1.5)
        with pytest.raises(ContractViolationError, match="outside"):
            checker.check_score(0, None, -0.2)

    def test_intervals_must_be_ordered_and_bounded(self):
        checker = ContractChecker()
        checker.check_interval(3, 0.2, 0.8)
        with pytest.raises(ContractViolationError, match="interval"):
            checker.check_interval(3, 0.8, 0.2)
        with pytest.raises(ContractViolationError, match="interval"):
            checker.check_interval(3, 0.5, 1.5)

    def test_epsilon_slack_tolerates_roundoff(self):
        checker = ContractChecker()
        checker.observe_threshold(0.5)
        checker.observe_threshold(0.5 + 1e-12)  # round-off, not a rise

    def test_reset_clears_history(self):
        checker = ContractChecker()
        checker.observe_threshold(0.3)
        checker.reset()
        checker.observe_threshold(0.9)  # fresh run: no previous threshold
        assert checker.checks == 1

    def test_probe_rejects_negative_trials(self):
        with pytest.raises(ValueError):
            ContractChecker(probe_trials=-1)


class TestResolution:
    def test_resolve_bool_and_instance(self, monkeypatch):
        monkeypatch.delenv("REPRO_CONTRACTS", raising=False)
        assert resolve_checker(False) is None
        assert resolve_checker(None) is None
        assert isinstance(resolve_checker(True), ContractChecker)
        checker = ContractChecker(probe_trials=7)
        assert resolve_checker(checker) is checker

    def test_env_switch_arms_default_off_call_sites(self, monkeypatch):
        monkeypatch.setenv("REPRO_CONTRACTS", "1")
        assert env_enabled()
        assert isinstance(resolve_checker(False), ContractChecker)
        data = uniform(20, 2, seed=0)
        mw = Middleware.over(data, CostModel.uniform(2))
        assert mw.contracts is not None

    def test_env_switch_off_values(self, monkeypatch):
        for value in ("", "0", "off", "no"):
            monkeypatch.setenv("REPRO_CONTRACTS", value)
            assert not env_enabled()
            assert resolve_checker(False) is None


class TestHealthyRuns:
    @pytest.mark.parametrize(
        "algo",
        [TA, NRA, lambda: nc_with_dummy_planner(sample_size=60)],
        ids=["TA", "NRA", "NC"],
    )
    def test_clean_run_passes_and_counts_checks(self, algo):
        data = uniform(60, 2, seed=11)
        plain = algo().run(_middleware(data, contracts=False), Avg(2), 5)
        mw = _middleware(data)
        checked = algo().run(mw, Avg(2), 5)
        assert checked.objects == plain.objects
        assert checked.scores == plain.scores
        assert mw.contracts is not None and mw.contracts.checks > 0

    def test_middleware_reset_resets_checker(self):
        data = uniform(40, 2, seed=3)
        mw = _middleware(data)
        first = TA().run(mw, Min(2), 4)
        mw.reset()
        second = TA().run(mw, Min(2), 4)
        assert first.objects == second.objects


class TestBrokenComponentsAreCaught:
    @pytest.mark.parametrize("algo", [TA, NRA], ids=["TA", "NRA"])
    def test_out_of_order_source_is_caught(self, algo):
        data = uniform(60, 2, seed=11)
        mw = _middleware(data, source_cls=OutOfOrderSource)
        with pytest.raises(ContractViolationError):
            algo().run(mw, Avg(2), 5)

    def test_out_of_order_source_passes_unchecked(self, monkeypatch):
        # The same lying source goes *unnoticed* without contracts: that
        # silence is exactly what the checker exists to remove.
        monkeypatch.delenv("REPRO_CONTRACTS", raising=False)
        data = uniform(60, 2, seed=11)
        mw = _middleware(data, contracts=False, source_cls=OutOfOrderSource)
        TA().run(mw, Avg(2), 5)

    def test_out_of_range_score_is_caught(self):
        data = uniform(30, 2, seed=5)
        mw = _middleware(data, source_cls=OutOfRangeSource)
        with pytest.raises(ContractViolationError, match="outside"):
            TA().run(mw, Avg(2), 3)

    def test_non_monotone_scoring_function_probed_before_access(self):
        data = uniform(50, 2, seed=9)
        mw = _middleware(data)
        with pytest.raises(ContractViolationError, match="monotonicity"):
            TA().run(mw, NonMonotone(2), 5)
        # The probe fired before any access was charged.
        assert mw.stats.total_accesses == 0

    def test_probe_can_be_disabled(self):
        data = uniform(30, 2, seed=9)
        mw = _middleware(data, contracts=ContractChecker(probe_trials=0))
        # Without the probe the run proceeds (and its *bound* contracts
        # still apply); NonMonotone stays within [0, 1] here so the run
        # completes -- wrongly, which is why the probe defaults to on.
        TA().run(mw, NonMonotone(2), 3)
