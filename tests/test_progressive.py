"""Tests for progressive answers, next-k continuation and theta-approximation."""

import itertools

import pytest

from repro.core.framework import FrameworkNC
from repro.core.policies import SRGPolicy
from repro.data.generators import uniform, zipf_skewed
from repro.scoring.functions import Avg, Min
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware
from tests.conftest import mw_over


class TestProgressiveAnswers:
    def test_stream_matches_batch_run(self, small_uniform):
        mw_a = mw_over(small_uniform)
        batch = FrameworkNC(mw_a, Min(2), 5, SRGPolicy([0.6, 0.6])).run()
        mw_b = mw_over(small_uniform)
        engine = FrameworkNC(mw_b, Min(2), 5, SRGPolicy([0.6, 0.6]))
        stream = list(itertools.islice(engine.answers(), 5))
        assert [e.obj for e in stream] == batch.objects
        assert [e.score for e in stream] == batch.scores
        assert mw_b.stats.total_cost() == mw_a.stats.total_cost()

    def test_answers_arrive_best_first(self, small_uniform):
        mw = mw_over(small_uniform)
        engine = FrameworkNC(mw, Avg(2), 10, SRGPolicy([0.5, 0.5]))
        scores = [entry.score for entry in itertools.islice(engine.answers(), 10)]
        assert scores == sorted(scores, reverse=True)

    def test_early_consumption_costs_less(self, small_uniform):
        """The stream is lazy: taking 1 answer costs no more than taking 5."""
        def cost_after(take):
            mw = mw_over(small_uniform)
            engine = FrameworkNC(mw, Min(2), 10, SRGPolicy([0.6, 0.6]))
            list(itertools.islice(engine.answers(), take))
            return mw.stats.total_cost()

        assert cost_after(1) <= cost_after(5)

    def test_stream_exhausts_at_n(self, ds1):
        mw = mw_over(ds1)
        engine = FrameworkNC(mw, Min(2), 1, SRGPolicy([0.5, 0.5]))
        everything = list(engine.answers())
        assert len(everything) == 3
        oracle = ds1.topk(Min(2), 3)
        assert [e.obj for e in everything] == [e.obj for e in oracle]

    def test_no_duplicate_confirmations(self, small_uniform):
        """An object redelivered by a later sorted access must not be
        confirmed twice (regression guard)."""
        mw = mw_over(small_uniform)
        engine = FrameworkNC(mw, Min(2), 1, SRGPolicy([0.0, 0.0]))
        everything = list(engine.answers())
        objs = [entry.obj for entry in everything]
        assert len(objs) == len(set(objs)) == small_uniform.n


class TestNextK:
    def test_continuation_extends_the_answer(self, small_uniform):
        """Consuming k then j more answers equals a top-(k+j) query."""
        fn = Min(2)
        mw = mw_over(small_uniform)
        engine = FrameworkNC(mw, fn, 3, SRGPolicy([0.6, 0.6]))
        stream = engine.answers()
        first = [e.obj for e in itertools.islice(stream, 3)]
        more = [e.obj for e in itertools.islice(stream, 4)]
        oracle = [e.obj for e in small_uniform.topk(fn, 7)]
        assert first + more == oracle

    def test_continuation_is_marginally_priced(self, small_uniform):
        """next-k costs at most what a fresh top-(k+j) run would."""
        fn = Min(2)

        mw_inc = mw_over(small_uniform)
        engine = FrameworkNC(mw_inc, fn, 3, SRGPolicy([0.6, 0.6]))
        stream = engine.answers()
        list(itertools.islice(stream, 3))
        cost_at_3 = mw_inc.stats.total_cost()
        list(itertools.islice(stream, 4))
        cost_at_7 = mw_inc.stats.total_cost()

        mw_full = mw_over(small_uniform)
        FrameworkNC(mw_full, fn, 7, SRGPolicy([0.6, 0.6])).run()
        assert cost_at_7 == mw_full.stats.total_cost()
        assert cost_at_3 < cost_at_7


class TestThetaApproximation:
    def test_theta_validated(self, small_uniform):
        with pytest.raises(ValueError):
            FrameworkNC(
                mw_over(small_uniform), Min(2), 1, SRGPolicy([0.5, 0.5]),
                theta=0.9,
            )

    def test_theta_one_is_exact(self, small_uniform):
        mw = mw_over(small_uniform)
        result = FrameworkNC(
            mw, Min(2), 5, SRGPolicy([0.6, 0.6]), theta=1.0
        ).run()
        oracle = small_uniform.topk(Min(2), 5)
        assert result.objects == [e.obj for e in oracle]
        assert "theta" not in result.metadata

    @pytest.mark.parametrize("theta", [1.1, 1.5, 2.0])
    def test_guarantee_holds(self, theta):
        """Every returned object y satisfies theta*F(y) >= F(x) for every
        non-returned x (checked against the ground truth)."""
        data = zipf_skewed(300, 2, skew=1.5, seed=8)
        fn = Min(2)
        mw = mw_over(data)
        result = FrameworkNC(
            mw, fn, 5, SRGPolicy([0.6, 0.6]), theta=theta
        ).run()
        returned = set(result.objects)
        assert len(returned) == 5
        others_best = max(
            fn(data.object_scores(x)) for x in range(data.n) if x not in returned
        )
        for y in returned:
            assert theta * fn(data.object_scores(y)) >= others_best - 1e-9

    def test_reported_scores_are_lower_bounds(self):
        data = uniform(200, 2, seed=4)
        fn = Avg(2)
        mw = mw_over(data)
        result = FrameworkNC(
            mw, fn, 5, SRGPolicy([0.7, 0.7]), theta=2.0
        ).run()
        for entry in result.ranking:
            true = fn(data.object_scores(entry.obj))
            assert entry.score <= true + 1e-9

    def test_larger_theta_never_costs_more(self):
        data = uniform(500, 2, seed=6)
        fn = Min(2)

        def cost(theta):
            mw = mw_over(data)
            FrameworkNC(
                mw, fn, 10, SRGPolicy([0.6, 0.6]), theta=theta
            ).run()
            return mw.stats.total_cost()

        exact = cost(1.0)
        approx = cost(1.5)
        very = cost(3.0)
        assert approx <= exact
        assert very <= approx

    def test_metadata_records_theta(self, small_uniform):
        mw = mw_over(small_uniform)
        result = FrameworkNC(
            mw, Min(2), 3, SRGPolicy([0.6, 0.6]), theta=1.5
        ).run()
        assert result.metadata["theta"] == 1.5
