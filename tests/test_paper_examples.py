"""Exact-match regressions of the paper's worked examples on Dataset 1.

These pin the engine to the published traces:

* Example 9 / Figure 7: the *focused* configuration answers Q with the two
  accesses ``sa_1, ra_2(u_3)``;
* Example 10 / Figure 8: the *deep-sorted* configuration descends p_1
  fully before one probe (four accesses);
* Example 4: the cost-model arithmetic of the two candidate algorithms;
* Figure 10: no-wild-guess processing via the virtual unseen object.
"""

import pytest

from repro.core.framework import FrameworkNC
from repro.core.policies import SRGPolicy
from repro.core.tasks import UNSEEN
from repro.scoring.functions import Min
from repro.sources.cost import CostModel
from repro.types import Access, AccessType
from tests.conftest import mw_over


class TestFigure7Trace:
    """Focused plan: delta = (0.75, 1.0) -- one sorted access, one probe."""

    def run_trace(self, ds1):
        steps = []
        mw = mw_over(ds1, record_log=True)
        engine = FrameworkNC(
            mw, Min(2), 1, SRGPolicy([0.75, 1.0]), observer=steps.append
        )
        result = engine.run()
        return result, mw, steps

    def test_answer_is_u3_at_07(self, ds1):
        result, _, _ = self.run_trace(ds1)
        assert result.objects == [2]
        assert result.scores == pytest.approx([0.7])

    def test_exact_access_sequence(self, ds1):
        _, mw, _ = self.run_trace(ds1)
        assert mw.stats.log == [Access.sorted(0), Access.random(1, 2)]

    def test_step1_targets_unseen_with_sorted_choices(self, ds1):
        _, _, steps = self.run_trace(ds1)
        assert steps[0].target == UNSEEN
        assert all(acc.is_sorted for acc in steps[0].alternatives)

    def test_step2_targets_u3_with_p2_choices(self, ds1):
        # Example 8: N(u3) = {sa_2, ra_2(u3)} once p1[u3] is known.
        _, _, steps = self.run_trace(ds1)
        assert steps[1].target == 2
        assert set(steps[1].alternatives) == {
            Access.sorted(1),
            Access.random(1, 2),
        }

    def test_total_cost_is_two_under_uniform_costs(self, ds1):
        _, mw, _ = self.run_trace(ds1)
        assert mw.stats.total_cost() == pytest.approx(2.0)


class TestFigure8Trace:
    """Parallel plan (Example 10): both lists descend, then one probe.

    With delta = (0.65, 0.85) the engine opens on p_1 (step 1), then the
    top task u_3 keeps offering sa_2 while l_2 exceeds its depth
    (steps 2-3), and finally probes ra_2(u_3) -- four accesses, versus the
    focused plan's two (Example 11's contrast).
    """

    def run_trace(self, ds1):
        mw = mw_over(ds1, record_log=True)
        engine = FrameworkNC(mw, Min(2), 1, SRGPolicy([0.65, 0.85]))
        result = engine.run()
        return result, mw

    def test_answer_unchanged(self, ds1):
        result, _ = self.run_trace(ds1)
        assert result.objects == [2]

    def test_four_accesses_three_sorted_one_probe(self, ds1):
        _, mw = self.run_trace(ds1)
        log = mw.stats.log
        assert log == [
            Access.sorted(0),
            Access.sorted(1),
            Access.sorted(1),
            Access.random(1, 2),
        ]

    def test_example11_focused_beats_deep_for_min(self, ds1):
        """Example 11: the focused configuration costs less under F=min."""
        _, deep_mw = self.run_trace(ds1)
        focused_mw = mw_over(ds1)
        FrameworkNC(focused_mw, Min(2), 1, SRGPolicy([0.75, 1.0])).run()
        assert focused_mw.stats.total_cost() < deep_mw.stats.total_cost()


class TestExample4CostArithmetic:
    """Example 4: pricing fixed access multisets under two cost scenarios."""

    def test_scenario_a_prefers_sorted_heavy_schedule(self):
        # Scenario like Figure 1(a): random much dearer than sorted.
        model = CostModel.per_predicate(cs=[1.0, 1.0], cr=[10.0, 10.0])
        # Algorithm A: 3 sorted + 3 random; algorithm A': 6 sorted.
        cost_a = 3 * 1.0 + 3 * 10.0
        cost_a_prime = 6 * 1.0
        assert cost_a_prime < cost_a
        # And the model prices accesses accordingly.
        assert model.access_cost(Access.random(0, 1)) == 10.0

    def test_scenario_b_reverses_the_preference(self):
        # Scenario like Figure 1(b): random access is free.
        cost_a = 3 * 1.0 + 3 * 0.0
        cost_a_prime = 6 * 1.0
        assert cost_a < cost_a_prime


class TestFigure10NoWildGuesses:
    def test_first_iteration_cannot_probe(self, ds1):
        steps = []
        mw = mw_over(ds1)
        FrameworkNC(
            mw, Min(2), 1, SRGPolicy([1.0, 1.0]), observer=steps.append
        ).run()
        # Even a probe-favouring plan must open with a sorted access: the
        # virtual unseen object admits no random access.
        assert steps[0].access.is_sorted

    def test_seen_object_surfaces_past_unseen(self, ds1):
        steps = []
        mw = mw_over(ds1)
        FrameworkNC(
            mw, Min(2), 1, SRGPolicy([1.0, 1.0]), observer=steps.append
        ).run()
        assert steps[0].target == UNSEEN
        assert steps[1].target == 2  # u3 ties at 0.7 and wins over UNSEEN
