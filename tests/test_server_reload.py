"""Server plan-memory invalidation across dataset / source-set changes.

The regression being pinned (and its fix): remembered plans used to be
keyed only by ``(expression, k)``, so a server whose source pool was
swapped out -- :meth:`QueryServer.reload`, or even a raw ``server.cache``
assignment -- would happily replay a ``(Delta, H)`` optimized against the
*old* pool. The key now leads with a scenario fingerprint (reload epoch,
pool size, arity, wild-guess setting, cost model, sample size).
"""

import pytest

from repro.data.generators import uniform
from repro.service import QueryServer, ServerConfig
from repro.sources.cache import SourceCache
from repro.sources.cost import CostModel

Q = "SELECT * FROM r ORDER BY min(a, b) STOP AFTER 20"
MODEL = CostModel.uniform(2, cs=1.0, cr=2.0)


def make_server(n: int = 1600, **config_kwargs) -> QueryServer:
    return QueryServer(
        MODEL,
        dataset=uniform(n, 2, seed=3),
        schema=["a", "b"],
        config=ServerConfig(**config_kwargs),
    )


class TestRawCacheSwap:
    def test_pool_size_change_invalidates_remembered_plan(self):
        """The fail-on-pre-fix regression: same expression and k, new
        source pool of a very different size -- the remembered plan must
        NOT be replayed (its sample-k scaling is wrong by 40x)."""
        server = make_server(n=1600)
        before = server.query(Q)
        assert server.stats()["plan_memory_entries"] == 1

        # Raw swap, bypassing reload(): the fingerprint's n_objects
        # still catches it because the pool size changed.
        server.cache = SourceCache.over(uniform(40, 2, seed=7), MODEL)
        after = server.query(Q)

        assert before.status == "done" and after.status == "done"
        assert (
            after.result.metadata["policy"]
            != before.result.metadata["policy"]
        )
        assert server.stats()["warm_start_hits"] == 0  # no verbatim reuse
        # Both scenarios are remembered side by side, not overwritten.
        assert server.stats()["plan_memory_entries"] == 2

    def test_same_pool_still_reuses(self):
        """The fingerprint must not over-invalidate: an unchanged server
        reuses its remembered plan verbatim."""
        server = make_server(n=1600)
        server.query(Q)
        hits_before = server.stats()["warm_start_hits"]
        server.query(Q)
        assert server.stats()["warm_start_hits"] == hits_before + 1
        assert server.stats()["plan_memory_entries"] == 1


class TestReload:
    def test_reload_clears_memory_and_bumps_epoch(self):
        server = make_server(n=300)
        server.query(Q)
        stats = server.stats()
        assert stats["plan_memory_entries"] == 1
        epoch = stats["plan_epoch"]

        server.reload(dataset=uniform(300, 2, seed=9))

        stats = server.stats()
        assert stats["plan_epoch"] == epoch + 1
        assert stats["plan_memory_entries"] == 0
        assert (
            server.metrics.counter_value("repro_server_reloads_total") == 1
        )

    def test_same_size_reload_invalidates_via_epoch(self):
        """A same-n reload leaves every fingerprint component equal
        except the epoch -- which must be enough to force a re-plan."""
        server = make_server(n=300)
        server.query(Q)
        hits = server.stats()["warm_start_hits"]
        server.reload(dataset=uniform(300, 2, seed=9))
        server.query(Q)
        # No verbatim reuse and no cross-epoch warm climb happened.
        assert server.stats()["warm_start_hits"] == hits
        assert server.stats()["plan_memory_entries"] == 1

    def test_reload_with_prebuilt_cache(self):
        server = make_server(n=300)
        cache = SourceCache.over(uniform(200, 2, seed=11), MODEL)
        server.reload(cache=cache)
        assert server.cache is cache
        # Observability is attached so reloaded pools keep reporting.
        assert cache.metrics is server.metrics
        response = server.query(Q)
        assert response.status == "done"

    def test_reload_argument_validation(self):
        server = make_server(n=300)
        with pytest.raises(ValueError):
            server.reload()
        with pytest.raises(ValueError):
            server.reload(
                dataset=uniform(100, 2, seed=0),
                cache=SourceCache.over(uniform(100, 2, seed=0), MODEL),
            )
        with pytest.raises(ValueError):
            server.reload(
                cache=SourceCache.over(
                    uniform(100, 3, seed=0), CostModel.uniform(3)
                )
            )

    def test_queries_answer_correctly_after_reload(self):
        server = make_server(n=300)
        before = server.query(Q)
        server.reload(dataset=uniform(300, 2, seed=3))
        after = server.query(Q)
        # Same dataset seed: same answers, freshly planned and executed.
        assert [e.obj for e in after.result.ranking] == [
            e.obj for e in before.result.ranking
        ]


class TestServerReplanKnob:
    def test_replan_mode_validated(self):
        with pytest.raises(ValueError):
            ServerConfig(replan="sometimes")

    def test_off_attaches_no_monitor(self):
        server = make_server(n=300, replan="off")
        response = server.query(Q)
        assert response.status == "done"
        assert server.stats()["replan_mode"] == "off"
        assert server.stats()["replans"] == {}

    def test_always_mode_checks_and_stays_put_when_static(self):
        """Simulated sources report no durations, so the revised model
        never moves: the server records checkpoint outcomes but keeps
        the plan, and answers match the off-mode server exactly."""
        server = make_server(n=300, replan="always")
        response = server.query(Q)
        assert response.status == "done"
        assert server.stats()["replan_mode"] == "always"
        outcomes = server.stats()["replans"]
        assert outcomes.get("switched", 0) == 0
        assert response.result.metadata["replan"]["checks"] > 0

        baseline = make_server(n=300, replan="off").query(Q)
        assert [e.obj for e in response.result.ranking] == [
            e.obj for e in baseline.result.ranking
        ]
        assert response.charged_cost == baseline.charged_cost
