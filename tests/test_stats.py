"""Tests for AccessStats: exact Eq. 1 cost accounting."""

import math

import pytest

from repro.sources.cost import CostModel
from repro.sources.stats import AccessStats
from repro.types import Access


def make_stats(record_log=False) -> AccessStats:
    return AccessStats(CostModel((1.0, 2.0), (5.0, 10.0)), record_log=record_log)


class TestCounting:
    def test_counts_per_predicate(self):
        stats = make_stats()
        stats.record(Access.sorted(0))
        stats.record(Access.sorted(0))
        stats.record(Access.sorted(1))
        stats.record(Access.random(1, 3))
        assert stats.sorted_counts == (2, 1)
        assert stats.random_counts == (0, 1)
        assert stats.total_sorted == 3
        assert stats.total_random == 1
        assert stats.total_accesses == 4


class TestEq1Cost:
    def test_total_cost_formula(self):
        # cost = 2*1 + 1*2 + 1*10 = 14
        stats = make_stats()
        stats.record(Access.sorted(0))
        stats.record(Access.sorted(0))
        stats.record(Access.sorted(1))
        stats.record(Access.random(1, 3))
        assert stats.total_cost() == pytest.approx(14.0)

    def test_cost_under_alternative_model(self):
        stats = make_stats()
        stats.record(Access.sorted(0))
        stats.record(Access.random(0, 1))
        alt = CostModel((10.0, 10.0), (1.0, 1.0))
        assert stats.total_cost(alt) == pytest.approx(11.0)

    def test_alternative_model_width_checked(self):
        stats = make_stats()
        with pytest.raises(ValueError):
            stats.total_cost(CostModel.uniform(3))

    def test_unsupported_access_prices_to_inf(self):
        stats = make_stats()
        stats.record(Access.random(0, 1))
        assert math.isinf(stats.total_cost(CostModel.no_random(2)))

    def test_empty_run_costs_zero(self):
        assert make_stats().total_cost() == 0.0


class TestLog:
    def test_log_disabled_by_default(self):
        stats = make_stats()
        stats.record(Access.sorted(0))
        with pytest.raises(ValueError):
            stats.log

    def test_log_preserves_order(self):
        stats = make_stats(record_log=True)
        accesses = [Access.sorted(0), Access.random(1, 2), Access.sorted(1)]
        for acc in accesses:
            stats.record(acc)
        assert stats.log == accesses

    def test_log_cost_recomputation_matches_counts(self):
        # Independent recomputation from the log must agree with the
        # aggregate accounting -- the invariant the harness relies on.
        stats = make_stats(record_log=True)
        for acc in [Access.sorted(0)] * 3 + [Access.random(1, i) for i in range(4)]:
            stats.record(acc)
        model = stats.cost_model
        recomputed = sum(model.access_cost(acc) for acc in stats.log)
        assert recomputed == pytest.approx(stats.total_cost())


class TestMerge:
    def test_merges_counts(self):
        a, b = make_stats(), make_stats()
        a.record(Access.sorted(0))
        b.record(Access.random(1, 0))
        a.merge(b)
        assert a.total_accesses == 2
        assert a.total_cost() == pytest.approx(11.0)

    def test_width_mismatch(self):
        a = make_stats()
        b = AccessStats(CostModel.uniform(3))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merges_logs_when_both_enabled(self):
        a, b = make_stats(record_log=True), make_stats(record_log=True)
        a.record(Access.sorted(0))
        b.record(Access.sorted(1))
        a.merge(b)
        assert len(a.log) == 2


class TestSnapshot:
    def test_snapshot_fields(self):
        stats = make_stats()
        stats.record(Access.sorted(1))
        snap = stats.snapshot()
        assert snap["sorted_counts"] == (0, 1)
        assert snap["total_cost"] == pytest.approx(2.0)
