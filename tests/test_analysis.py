"""Tests for the optimality-analysis tooling."""

import pytest

from repro.algorithms.nc import NC
from repro.algorithms.nra import NRA
from repro.algorithms.ta import TA
from repro.analysis.optimality import (
    competitive_ratio,
    instance_profile,
    offline_optimal,
)
from repro.bench.scenarios import Scenario, s2
from repro.core.framework import FrameworkNC
from repro.core.policies import SRGPolicy
from repro.data.generators import uniform
from repro.exceptions import OptimizationError
from repro.optimizer.plan import SRGPlan
from repro.scoring.functions import Min
from repro.sources.cost import CostModel


def tiny_scenario(n=120, k=3, seed=2):
    return Scenario(
        name="tiny",
        description="analysis test scenario",
        dataset=uniform(n, 2, seed=seed),
        fn=Min(2),
        k=k,
        cost_model=CostModel.uniform(2),
    )


class TestOfflineOptimal:
    def test_is_a_lower_bound_over_its_own_grid(self):
        scenario = tiny_scenario()
        optimum = offline_optimal(scenario, resolution=4)
        # Re-executing any grid plan cannot beat the reported optimum.
        for d0 in (0.0, 1 / 3, 2 / 3, 1.0):
            for d1 in (0.0, 1.0):
                mw = scenario.middleware()
                FrameworkNC(
                    mw, scenario.fn, scenario.k, SRGPolicy([d0, d1])
                ).run()
                assert optimum.cost <= mw.stats.total_cost() + 1e-9

    def test_counts_evaluations(self):
        scenario = tiny_scenario()
        optimum = offline_optimal(scenario, resolution=3)
        assert optimum.plans_evaluated == 3**2 * 2  # grid x 2 schedules

    def test_guard_against_blowup(self):
        scenario = tiny_scenario()
        with pytest.raises(OptimizationError):
            offline_optimal(scenario, resolution=50, max_plans=100)

    def test_resolution_validated(self):
        with pytest.raises(OptimizationError):
            offline_optimal(tiny_scenario(), resolution=1)

    def test_custom_schedules(self):
        scenario = tiny_scenario()
        optimum = offline_optimal(
            scenario, resolution=3, schedules=[(0, 1)]
        )
        assert optimum.schedule == (0, 1)


class TestCompetitiveRatio:
    def test_ratio_at_least_one_for_sr_algorithms(self):
        scenario = tiny_scenario()
        reference = offline_optimal(scenario, resolution=4)
        # NC pinned to the reference plan achieves exactly 1.0.
        pinned = NC(
            plan=SRGPlan(depths=reference.depths, schedule=reference.schedule)
        )
        assert competitive_ratio(pinned, scenario, reference) == pytest.approx(1.0)

    def test_ta_ratio_above_one_in_asymmetric_scenario(self):
        scenario = s2(n=400, k=5)
        reference = offline_optimal(scenario, resolution=4)
        assert competitive_ratio(TA(), scenario, reference) > 1.2

    def test_computes_reference_when_missing(self):
        scenario = tiny_scenario(n=60, k=2)
        ratio = competitive_ratio(TA(), scenario)
        assert ratio >= 1.0 - 1e-9


class TestInstanceProfile:
    def test_skips_incapable_algorithms(self):
        scenario = tiny_scenario().with_cost_model(
            CostModel.no_random(2), name="tiny-nr"
        )
        _ref, rows = instance_profile(scenario, [TA(), NRA()], resolution=3)
        assert [name for name, _ in rows] == ["NRA"]

    def test_profile_orders_match_inputs(self):
        scenario = tiny_scenario()
        _ref, rows = instance_profile(scenario, [TA(), NRA()], resolution=3)
        assert [name for name, _ in rows] == ["TA", "NRA"]
        assert all(ratio > 0 for _name, ratio in rows)
