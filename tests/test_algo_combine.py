"""Tests for Quick-Combine and Stream-Combine (indicator-guided access)."""

import pytest

from repro.algorithms.quick_combine import QuickCombine
from repro.algorithms.stream_combine import StreamCombine
from repro.data.dataset import Dataset
from repro.data.generators import uniform, zipf_skewed
from repro.exceptions import CapabilityError
from repro.scoring.functions import Avg, Min, WeightedSum
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware
from tests.conftest import assert_valid_topk, mw_over, score_multiset


class TestQuickCombineCorrectness:
    @pytest.mark.parametrize("k", [1, 4])
    def test_valid_topk(self, small_uniform, k):
        mw = mw_over(small_uniform)
        result = QuickCombine().run(mw, Avg(2), k)
        assert_valid_topk(result, small_uniform, Avg(2), k)

    def test_min_function_still_correct(self, small_uniform):
        # The derivative indicator degenerates for min; the round-robin
        # fallback must keep the algorithm correct.
        mw = mw_over(small_uniform)
        result = QuickCombine().run(mw, Min(2), 3)
        assert_valid_topk(result, small_uniform, Min(2), 3)

    def test_three_predicates(self, medium_uniform):
        mw = mw_over(medium_uniform)
        result = QuickCombine().run(mw, WeightedSum([0.5, 0.3, 0.2]), 4)
        assert_valid_topk(result, medium_uniform, WeightedSum([0.5, 0.3, 0.2]), 4)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            QuickCombine(window=0)

    def test_requires_both_access_types(self, small_uniform):
        mw = Middleware.over(small_uniform, CostModel.no_random(2))
        with pytest.raises(CapabilityError):
            QuickCombine().run(mw, Avg(2), 1)

    def test_flat_lists_terminate(self):
        # Constant lists have zero drop -> zero indicator everywhere;
        # the fallback must still make progress.
        data = Dataset([[0.5, 0.5]] * 12)
        mw = mw_over(data)
        result = QuickCombine().run(mw, Avg(2), 3)
        assert result.scores == pytest.approx([0.5] * 3)


class TestQuickCombineBehaviour:
    def test_weighted_sum_skews_descent_to_heavy_list(self):
        """The indicator directs sorted accesses to the influential list."""
        data = uniform(400, 2, seed=10)
        fn = WeightedSum([0.95, 0.05])
        mw = mw_over(data)
        QuickCombine().run(mw, fn, 5)
        counts = mw.stats.sorted_counts
        assert counts[0] > counts[1]


class TestStreamCombineCorrectness:
    @pytest.mark.parametrize("k", [1, 4])
    def test_exact_mode_valid_topk(self, small_uniform, k):
        mw = Middleware.over(small_uniform, CostModel.no_random(2))
        result = StreamCombine().run(mw, Avg(2), k)
        assert_valid_topk(result, small_uniform, Avg(2), k)
        assert mw.stats.total_random == 0

    def test_set_mode_valid_set(self, small_uniform):
        mw = Middleware.over(small_uniform, CostModel.no_random(2))
        result = StreamCombine(exact_scores=False).run(mw, Avg(2), 4)
        oracle = small_uniform.topk(Avg(2), 4)
        true_scores = sorted(
            round(Avg(2)(small_uniform.object_scores(obj)), 9)
            for obj in result.objects
        )
        assert true_scores == score_multiset(oracle)

    def test_min_function_still_correct(self, small_uniform):
        mw = Middleware.over(small_uniform, CostModel.no_random(2))
        result = StreamCombine().run(mw, Min(2), 3)
        assert_valid_topk(result, small_uniform, Min(2), 3)

    def test_requires_sorted_everywhere(self, small_uniform):
        model = CostModel((1.0, float("inf")), (1.0, 1.0))
        mw = Middleware.over(small_uniform, model)
        with pytest.raises(CapabilityError):
            StreamCombine().run(mw, Min(2), 1)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            StreamCombine(window=0)

    def test_skewed_data(self):
        data = zipf_skewed(200, 2, skew=2.0, seed=9)
        mw = Middleware.over(data, CostModel.no_random(2))
        result = StreamCombine().run(mw, Avg(2), 3)
        assert_valid_topk(result, data, Avg(2), 3)


class TestStreamCombineBehaviour:
    def test_never_probes(self, small_uniform):
        mw = mw_over(small_uniform)
        StreamCombine().run(mw, Avg(2), 3)
        assert mw.stats.total_random == 0

    def test_weighted_sum_skews_descent(self):
        data = uniform(400, 2, seed=12)
        fn = WeightedSum([0.9, 0.1])
        mw = Middleware.over(data, CostModel.no_random(2))
        StreamCombine().run(mw, fn, 5)
        counts = mw.stats.sorted_counts
        assert counts[0] > counts[1]
