"""The repro lint pass: framework, every rule, suppression, self-check.

Each rule gets at least one fixture that trips it and one clean
counterexample that must not; the suite ends with the self-check the CI
``lint`` job runs — ``repro lint src/repro`` must be clean.
"""

import json
import textwrap

import pytest

from repro.cli import main as cli_main
from repro.lint import (
    Finding,
    json_report,
    registered_rules,
    run_lint,
    text_report,
)
from repro.lint.core import PARSE_ERROR_ID, path_matches


def lint_source(tmp_path, source, name="mod.py", select=None):
    """Write one fixture module and lint it; return the findings."""
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return run_lint([path], select=select).findings


def rules_hit(findings):
    return {finding.rule for finding in findings}


class TestFramework:
    def test_all_five_rules_registered(self):
        assert set(registered_rules()) == {
            "RL001",
            "RL002",
            "RL003",
            "RL004",
            "RL005",
        }

    def test_select_restricts_and_rejects_unknown(self, tmp_path):
        source = """
        import random

        def f():
            return random.random()
        """
        assert rules_hit(lint_source(tmp_path, source, select=["RL002"])) == {
            "RL002"
        }
        assert lint_source(tmp_path, source, select=["RL001"]) == []
        with pytest.raises(ValueError, match="RL999"):
            run_lint([tmp_path], select=["RL999"])

    def test_syntax_error_reported_not_raised(self, tmp_path):
        findings = lint_source(tmp_path, "def broken(:\n")
        assert [finding.rule for finding in findings] == [PARSE_ERROR_ID]

    def test_suppression_comment_silences_one_rule(self, tmp_path):
        flagged = lint_source(
            tmp_path, "import random\nx = random.random()\n"
        )
        assert rules_hit(flagged) == {"RL002"}
        suppressed = lint_source(
            tmp_path,
            "import random\n"
            "x = random.random()  # repro-lint: ignore[RL002] -- demo\n",
        )
        assert suppressed == []
        # Naming a *different* rule does not silence RL002.
        wrong_id = lint_source(
            tmp_path,
            "import random\n"
            "x = random.random()  # repro-lint: ignore[RL001]\n",
        )
        assert rules_hit(wrong_id) == {"RL002"}
        # A bare ignore silences everything on the line.
        bare = lint_source(
            tmp_path,
            "import random\n"
            "x = random.random()  # repro-lint: ignore\n",
        )
        assert bare == []

    def test_path_matches_suffix_semantics(self):
        assert path_matches("src/repro/sources/middleware.py", ("sources/middleware.py",))
        assert path_matches("sources/middleware.py", ("sources/middleware.py",))
        assert path_matches("src/repro/faults/injector.py", ("faults/*",))
        assert not path_matches("src/repro/core/state.py", ("faults/*",))

    def test_reports_text_and_json(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text("import random\nx = random.random()\n")
        report = run_lint([path])
        text = text_report(report)
        assert "RL002" in text and "1 finding" in text
        payload = json.loads(json_report(report))
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "RL002"
        assert payload["rules_run"] == sorted(registered_rules())

    def test_finding_format_is_path_line_col(self):
        finding = Finding("RL001", "a/b.py", 3, 5, "boom")
        assert finding.format() == "a/b.py:3:5: RL001 boom"


class TestRL001UnchargedAccess:
    def test_direct_source_access_flagged(self, tmp_path):
        source = """
        def run(sources):
            pair = sources[0].sorted_access()
            score = sources[1].random_access(4)
            return pair, score
        """
        findings = lint_source(tmp_path, source)
        assert [finding.rule for finding in findings] == ["RL001", "RL001"]
        assert "bypasses the middleware" in findings[0].message

    def test_middleware_receiver_clean(self, tmp_path):
        source = """
        def run(middleware, mw):
            middleware.sorted_access(0)
            mw.random_access(1, 4)
            return self.middleware.sorted_access(0)
        """
        assert lint_source(tmp_path, source) == []

    def test_allowed_inside_middleware_and_faults(self, tmp_path):
        source = """
        def attempt(source):
            return source.sorted_access()
        """
        assert lint_source(tmp_path, source, name="sources/middleware.py") == []
        assert lint_source(tmp_path, source, name="faults/injector.py") == []
        assert rules_hit(lint_source(tmp_path, source, name="core/engine.py")) == {
            "RL001"
        }


class TestRL002Nondeterminism:
    def test_global_random_calls_flagged(self, tmp_path):
        source = """
        import random

        def jitter():
            return random.uniform(0.0, 1.0)
        """
        findings = lint_source(tmp_path, source)
        assert rules_hit(findings) == {"RL002"}
        assert "module-level generator" in findings[0].message

    def test_unseeded_random_flagged_even_in_rng_roots(self, tmp_path):
        source = """
        import random

        def make():
            return random.Random()
        """
        assert rules_hit(lint_source(tmp_path, source, name="faults/rng.py")) == {
            "RL002"
        }

    def test_seeded_random_outside_roots_flagged(self, tmp_path):
        source = """
        import random

        def make(seed):
            return random.Random(seed)
        """
        findings = lint_source(tmp_path, source, name="core/policy.py")
        assert rules_hit(findings) == {"RL002"}
        assert "derive_rng" in findings[0].message

    def test_seeded_random_inside_roots_clean(self, tmp_path):
        source = """
        import random

        def make(seed):
            return random.Random(seed)
        """
        for name in ("determinism.py", "faults/rng.py", "bench/workloads.py"):
            assert lint_source(tmp_path, source, name=name) == []

    def test_wall_clock_and_entropy_flagged(self, tmp_path):
        source = """
        import os
        import time
        import uuid
        from datetime import datetime

        def stamp():
            return time.time(), datetime.now(), os.urandom(4), uuid.uuid4()
        """
        findings = lint_source(tmp_path, source)
        assert len(findings) == 4
        assert rules_hit(findings) == {"RL002"}

    def test_import_aliases_resolved(self, tmp_path):
        source = """
        import random as rnd
        from random import Random

        def make():
            rnd.shuffle([])
            return Random()
        """
        findings = lint_source(tmp_path, source)
        assert len(findings) == 2

    def test_injected_rng_clean(self, tmp_path):
        source = """
        def jitter(rng):
            return rng.uniform(0.0, 1.0)
        """
        assert lint_source(tmp_path, source) == []

    def test_numpy_global_generator_flagged(self, tmp_path):
        source = """
        import numpy as np

        def noise():
            return np.random.rand(3)

        def gen():
            return np.random.default_rng()
        """
        findings = lint_source(tmp_path, source)
        assert len(findings) == 2
        seeded = lint_source(
            tmp_path,
            """
            import numpy as np

            def gen(seed):
                return np.random.default_rng(seed)
            """,
        )
        assert seeded == []


class TestRL003UnrootedException:
    def test_unrooted_exception_class_flagged(self, tmp_path):
        source = """
        class PlanError(RuntimeError):
            pass
        """
        findings = lint_source(tmp_path, source)
        assert rules_hit(findings) == {"RL003"}
        assert "ReproError" in findings[0].message

    def test_transitively_unrooted_flagged(self, tmp_path):
        source = """
        class Base(ValueError):
            pass

        class Leaf(Base):
            pass
        """
        assert len(lint_source(tmp_path, source)) == 2

    def test_rooted_exception_clean(self, tmp_path):
        source = """
        class ReproError(Exception):
            pass

        class PlanError(ReproError):
            pass

        class SourceError(PlanError, RuntimeError):
            pass
        """
        assert lint_source(tmp_path, source) == []

    def test_non_exception_classes_ignored(self, tmp_path):
        source = """
        class Plan:
            pass

        class Wide(dict):
            pass
        """
        assert lint_source(tmp_path, source) == []

    def test_raise_bare_exception_flagged(self, tmp_path):
        source = """
        def f():
            raise Exception("nope")
        """
        findings = lint_source(tmp_path, source)
        assert rules_hit(findings) == {"RL003"}

    def test_reraise_clean(self, tmp_path):
        source = """
        def f(exc):
            try:
                pass
            except ValueError:
                raise
            raise exc
        """
        assert lint_source(tmp_path, source) == []


class TestRL004AlgorithmInterface:
    def test_missing_run_flagged(self, tmp_path):
        source = """
        class TopKAlgorithm:
            def run(self, middleware, fn, k):
                raise NotImplementedError

        class Broken(TopKAlgorithm):
            def helper(self):
                return 1
        """
        findings = lint_source(tmp_path, source)
        assert rules_hit(findings) == {"RL004"}
        assert "does not define run, name" in findings[0].message

    def test_complete_subclass_clean(self, tmp_path):
        source = """
        class TopKAlgorithm:
            pass

        class Fine(TopKAlgorithm):
            name = "fine"

            def run(self, middleware, fn, k):
                return None
        """
        assert lint_source(tmp_path, source) == []

    def test_abstract_intermediate_exempt_concrete_inherits(self, tmp_path):
        source = """
        import abc

        class TopKAlgorithm:
            pass

        class Scaffold(TopKAlgorithm, abc.ABC):
            name = "scaffold"

            @abc.abstractmethod
            def step(self):
                ...

        class Concrete(Scaffold):
            def step(self):
                return 0

            def run(self, middleware, fn, k):
                return None
        """
        # Scaffold is abstract (exempt); Concrete inherits name from it.
        assert lint_source(tmp_path, source) == []

    def test_policy_and_source_requirements(self, tmp_path):
        source = """
        class SelectPolicy:
            pass

        class Source:
            pass

        class NoSelect(SelectPolicy):
            pass

        class HalfSource(Source):
            def sorted_access(self):
                return None
        """
        findings = lint_source(tmp_path, source)
        assert len(findings) == 2
        messages = " ".join(finding.message for finding in findings)
        assert "select" in messages and "random_access" in messages


class TestRL005MutableDefault:
    def test_mutable_signature_defaults_flagged(self, tmp_path):
        source = """
        def f(a, seen=[], *, table={}):
            return a, seen, table
        """
        findings = lint_source(tmp_path, source)
        assert len(findings) == 2
        assert rules_hit(findings) == {"RL005"}

    def test_mutable_class_body_flagged(self, tmp_path):
        source = """
        class Tracker:
            log = []
            bounds: dict = {}
        """
        findings = lint_source(tmp_path, source)
        assert len(findings) == 2

    def test_classvar_and_immutable_clean(self, tmp_path):
        source = """
        from dataclasses import dataclass, field
        from typing import ClassVar

        @dataclass
        class Config:
            KINDS: ClassVar[list] = ["a", "b"]
            order: tuple = ()
            table: dict = field(default_factory=dict)

        def f(a, seen=None):
            return a, seen if seen is not None else []
        """
        assert lint_source(tmp_path, source) == []

    def test_mutable_constructor_defaults_flagged(self, tmp_path):
        source = """
        def f(xs=list(), ys=set()):
            return xs, ys
        """
        assert len(lint_source(tmp_path, source)) == 2


class TestSelfCheck:
    def test_library_is_lint_clean_via_cli(self, capsys):
        assert cli_main(["lint", "src/repro"]) == 0
        out = capsys.readouterr().out
        assert "0 findings" in out

    def test_cli_nonzero_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        assert cli_main(["lint", str(bad)]) == 1
        assert "RL002" in capsys.readouterr().out

    def test_cli_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nx = time.time()\n")
        assert cli_main(["lint", str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False

    def test_cli_unknown_rule_is_an_error(self, capsys):
        assert cli_main(["lint", "src/repro", "--select", "RL999"]) == 2
        assert "RL999" in capsys.readouterr().err
