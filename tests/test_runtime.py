"""Tests for the async engine (docs/RUNTIME.md): pacing + determinism."""

import asyncio

import pytest

from repro.core.framework import FrameworkNC
from repro.core.policies import SRGPolicy
from repro.data.generators import uniform
from repro.exceptions import ReproError
from repro.parallel.executor import ParallelExecutor
from repro.runtime import AsyncExecutor, Pacer
from repro.scoring.functions import Avg, Min
from repro.serialization import result_to_dict
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware
from tests.conftest import assert_valid_topk


class TestPacer:
    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            Pacer(-0.1)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            asyncio.run(Pacer().wait(-1.0))

    def test_zero_scale_always_yields(self):
        """Scale 0 still yields control -- the interleaving point exists."""
        order = []

        async def a():
            await Pacer().wait(5.0)
            order.append("a")

        async def b():
            order.append("b")

        async def main():
            await asyncio.gather(a(), b())

        asyncio.run(main())
        # a() started first but its wait yielded, letting b() run through.
        assert order == ["b", "a"]

    def test_wave_waits_makespan_not_sum(self):
        """One sleep per wave; an empty wave is a plain yield."""

        async def main():
            pacer = Pacer(0.0)
            await pacer.wave([3.0, 1.0, 2.0])
            await pacer.wave([])

        asyncio.run(main())

    def test_positive_scale_sleeps(self):
        async def main():
            loop = asyncio.get_running_loop()
            start = loop.time()
            await Pacer(0.01).wait(2.0)
            return loop.time() - start

        assert asyncio.run(main()) >= 0.015


def _mw(data, m=2):
    return Middleware.over(data, CostModel.uniform(m))


class TestSequentialShadow:
    """concurrency == 1: byte-for-byte the sequential engine."""

    def test_result_identical_to_framework_nc(self):
        data = uniform(200, 2, seed=3)
        seq = FrameworkNC(_mw(data), Min(2), 5, SRGPolicy([0.6, 0.6])).run()
        engine = AsyncExecutor(
            _mw(data), Min(2), 5, SRGPolicy([0.6, 0.6]), concurrency=1
        )
        result = asyncio.run(engine.run_async())
        assert result_to_dict(result) == result_to_dict(seq)

    def test_paced_run_still_identical(self):
        """A positive time scale changes wall time, never the answer."""
        data = uniform(60, 2, seed=5)
        seq = FrameworkNC(_mw(data), Avg(2), 3, SRGPolicy([0.5, 1.0])).run()
        engine = AsyncExecutor(
            _mw(data),
            Avg(2),
            3,
            SRGPolicy([0.5, 1.0]),
            pacer=Pacer(0.0001),
        )
        result = asyncio.run(engine.run_async())
        assert result_to_dict(result) == result_to_dict(seq)

    def test_progressive_answers_match_final_ranking(self):
        data = uniform(150, 2, seed=7)
        engine = AsyncExecutor(_mw(data), Min(2), 4, SRGPolicy([0.7, 0.7]))
        seen = []

        async def on_answer(answer):
            seen.append(answer)

        result = asyncio.run(engine.run_async(on_answer))
        assert [a.obj for a in seen] == [a.obj for a in result.ranking]
        assert [a.score for a in seen] == [a.score for a in result.ranking]
        assert_valid_topk(result, data, Min(2), 4)

    def test_execute_async_tracks_elapsed_and_waves(self):
        """At c=1 with unit costs, elapsed == Eq. 1 cost, waves == accesses."""
        data = uniform(100, 2, seed=11)
        mw = _mw(data)
        engine = AsyncExecutor(mw, Min(2), 3, SRGPolicy([0.6, 0.6]))
        outcome = asyncio.run(engine.execute_async())
        assert outcome.concurrency == 1
        assert outcome.elapsed == pytest.approx(outcome.total_cost)
        assert outcome.waves == mw.stats.total_accesses

    def test_stream_requires_concurrency_one(self):
        data = uniform(30, 2, seed=1)
        engine = AsyncExecutor(
            _mw(data), Min(2), 2, SRGPolicy([0.5, 0.5]), concurrency=2
        )

        async def consume():
            async for _ in engine.stream():
                pass

        with pytest.raises(ReproError):
            asyncio.run(consume())


class TestWaveShadow:
    """concurrency > 1: decision-for-decision the parallel executor."""

    @pytest.mark.parametrize("c", [2, 4, 8])
    def test_outcome_identical_to_parallel_executor(self, c):
        data = uniform(200, 2, seed=3)
        par = ParallelExecutor(
            _mw(data), Min(2), 5, SRGPolicy([0.6, 0.6]), concurrency=c
        ).execute()
        engine = AsyncExecutor(
            _mw(data), Min(2), 5, SRGPolicy([0.6, 0.6]), concurrency=c
        )
        outcome = asyncio.run(engine.execute_async())
        assert result_to_dict(outcome.result) == result_to_dict(par.result)
        assert outcome.elapsed == par.elapsed
        assert outcome.waves == par.waves

    def test_eager_speculation_identical_too(self):
        data = uniform(200, 2, seed=9)
        par = ParallelExecutor(
            _mw(data),
            Min(2),
            5,
            SRGPolicy([0.6, 0.6]),
            concurrency=4,
            speculation="eager",
        ).execute()
        engine = AsyncExecutor(
            _mw(data),
            Min(2),
            5,
            SRGPolicy([0.6, 0.6]),
            concurrency=4,
            speculation="eager",
        )
        outcome = asyncio.run(engine.execute_async())
        assert result_to_dict(outcome.result) == result_to_dict(par.result)

    def test_on_answer_fires_in_rank_order_at_completion(self):
        data = uniform(120, 2, seed=2)
        engine = AsyncExecutor(
            _mw(data), Min(2), 3, SRGPolicy([0.5, 0.5]), concurrency=4
        )
        seen = []

        async def on_answer(answer):
            seen.append(answer.obj)

        result = asyncio.run(engine.run_async(on_answer))
        assert seen == [a.obj for a in result.ranking]


class TestCancellationSafety:
    def test_cancel_lands_between_consistent_states(self):
        """Killing the engine mid-run leaves middleware/cache coherent.

        The engine's only suspension points are pacer waits, so a cancel
        can never split an access's charge from its fetch: afterwards the
        middleware's charged+cached accounting is internally consistent
        and the shared sources are not corrupted (a fresh engine over the
        same pool still answers exactly).
        """
        data = uniform(200, 2, seed=13)
        mw = _mw(data)
        engine = AsyncExecutor(mw, Min(2), 5, SRGPolicy([0.6, 0.6]))

        async def main():
            task = asyncio.create_task(engine.run_async())
            for _ in range(25):
                await asyncio.sleep(0)
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

        asyncio.run(main())
        # It ran -- and was killed mid-flight, not after completion.
        assert 0 < mw.stats.total_accesses
        # Every recorded access is accounted once: the stats' own ledger
        # (per-predicate sums == totals) survived the kill.
        per_pred = sum(mw.stats.sorted_counts) + sum(mw.stats.random_counts)
        assert per_pred == mw.stats.total_accesses

    def test_shared_pool_not_corrupted_by_cancel(self):
        from repro.sources.cache import SourceCache

        data = uniform(150, 2, seed=17)
        model = CostModel.uniform(2)
        cache = SourceCache.over(data, model)

        async def main():
            mw = Middleware.warm(cache, model)
            engine = AsyncExecutor(mw, Min(2), 5, SRGPolicy([0.6, 0.6]))
            task = asyncio.create_task(engine.run_async())
            for _ in range(30):
                await asyncio.sleep(0)
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
            # The survivor: a fresh warm engine over the same cache.
            mw2 = Middleware.warm(cache, model)
            engine2 = AsyncExecutor(mw2, Min(2), 5, SRGPolicy([0.6, 0.6]))
            return await engine2.run_async()

        result = asyncio.run(main())
        assert_valid_topk(result, data, Min(2), 5)
