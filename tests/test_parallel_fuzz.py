"""Property-based checks of the parallel executor's contracts."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.framework import FrameworkNC
from repro.core.policies import SRGPolicy
from repro.data.dataset import Dataset
from repro.parallel.executor import ParallelExecutor
from repro.scoring.functions import Avg, Min
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware
from tests.conftest import score_multiset

score_value = st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32)


@st.composite
def parallel_instances(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    rows = draw(
        st.lists(
            st.lists(score_value, min_size=2, max_size=2),
            min_size=n,
            max_size=n,
        )
    )
    dataset = Dataset(np.array(rows, dtype=float))
    fn = draw(st.sampled_from([Min(2), Avg(2)]))
    k = draw(st.integers(min_value=1, max_value=n))
    c = draw(st.integers(min_value=1, max_value=8))
    d0 = draw(st.sampled_from([0.0, 0.5, 1.0]))
    d1 = draw(st.sampled_from([0.0, 0.5, 1.0]))
    return dataset, fn, k, c, (d0, d1)


class TestParallelContractsFuzz:
    @settings(max_examples=60, deadline=None)
    @given(parallel_instances())
    def test_none_mode_bounded_overhead_vs_sequential(self, instance):
        """The none-mode cost contract, in its *sound* form.

        The old claim -- total cost *equals* the sequential plan's -- is
        falsifiable: the wave planner gives every popped top-k target its
        policy-selected access, while the sequential engine works only on
        the heap top, so positions 2..k of a wave can be accesses the
        sequential run proves unnecessary (see the pinned reproducer in
        ``tests/test_parallel.py::TestNoneModeCostParity``). What *is*
        guaranteed: exact equality when every wave has one slot or one
        target (``c == 1`` or ``k == 1``), and otherwise at most
        ``min(c, k) - 1`` speculative accesses per wave, each bounded by
        the dearest access price.
        """
        dataset, fn, k, c, depths = instance

        mw_seq = Middleware.over(dataset, CostModel.uniform(2))
        seq = FrameworkNC(mw_seq, fn, k, SRGPolicy(depths)).run()

        mw_par = Middleware.over(dataset, CostModel.uniform(2))
        outcome = ParallelExecutor(
            mw_par, fn, k, SRGPolicy(depths), concurrency=c
        ).execute()

        # Exact answer (score multiset; ties may pick other members).
        assert score_multiset(outcome.result.ranking) == score_multiset(
            seq.ranking
        )
        # Cost parity: exact at width one, boundedly above otherwise.
        seq_cost = mw_seq.stats.total_cost()
        if c == 1 or k == 1:
            assert outcome.total_cost == seq_cost
        else:
            c_max = 1.0  # CostModel.uniform(2): every access costs 1
            slack = (min(c, k) - 1) * c_max * outcome.waves
            assert outcome.total_cost <= seq_cost + slack
        # Elapsed-time sandwich: cost/c <= elapsed <= cost.
        assert outcome.elapsed <= outcome.total_cost + 1e-9
        assert outcome.elapsed >= outcome.total_cost / c - 1e-9
        # Wave accounting consistent.
        assert outcome.waves <= mw_par.stats.total_accesses

    @settings(max_examples=30, deadline=None)
    @given(parallel_instances())
    def test_eager_mode_still_exact(self, instance):
        dataset, fn, k, c, depths = instance
        mw = Middleware.over(dataset, CostModel.uniform(2))
        outcome = ParallelExecutor(
            mw, fn, k, SRGPolicy(depths), concurrency=c, speculation="eager"
        ).execute()
        oracle = dataset.topk(fn, k)
        assert score_multiset(outcome.result.ranking) == score_multiset(oracle)
