"""Tests for the access-trace analytics."""

import pytest

from repro.analysis.trace import format_trace_summary, summarize_trace
from repro.core.framework import FrameworkNC
from repro.core.policies import SRGPolicy
from repro.sources.cost import CostModel
from repro.types import Access
from tests.conftest import mw_over
from repro.scoring.functions import Min


def manual_log():
    return [
        Access.sorted(0),
        Access.sorted(0),
        Access.random(1, 3),
        Access.random(1, 3),
        Access.sorted(1),
    ]


class TestSummarizeTrace:
    def test_per_predicate_counts_and_costs(self):
        model = CostModel((1.0, 2.0), (5.0, 10.0))
        summary = summarize_trace(manual_log(), model)
        p0, p1 = summary.predicates
        assert (p0.sorted_accesses, p0.random_accesses) == (2, 0)
        assert (p1.sorted_accesses, p1.random_accesses) == (1, 2)
        assert p0.sorted_cost == 2.0
        assert p1.random_cost == 20.0
        assert p1.total_cost == 22.0
        assert summary.total_cost == pytest.approx(24.0)

    def test_phase_detection(self):
        model = CostModel.uniform(2)
        summary = summarize_trace(manual_log(), model)
        assert summary.phases == [("sorted", 2), ("random", 2), ("sorted", 1)]
        assert summary.phase_switches == 2
        assert not summary.is_sorted_then_random

    def test_sr_schedule_recognized(self):
        model = CostModel.uniform(1)
        log = [Access.sorted(0), Access.sorted(0), Access.random(0, 1)]
        summary = summarize_trace(log, model)
        assert summary.is_sorted_then_random

    def test_probe_distribution(self):
        summary = summarize_trace(manual_log(), CostModel.uniform(2))
        assert summary.probes_per_object == {3: 2}

    def test_empty_log(self):
        summary = summarize_trace([], CostModel.uniform(2))
        assert summary.total_cost == 0.0
        assert summary.phases == []
        assert summary.is_sorted_then_random  # vacuously

    def test_agrees_with_middleware_accounting(self, small_uniform):
        mw = mw_over(small_uniform, record_log=True)
        FrameworkNC(mw, Min(2), 3, SRGPolicy([0.7, 0.7])).run()
        summary = summarize_trace(mw.stats.log, mw.cost_model)
        assert summary.total_cost == mw.stats.total_cost()
        assert summary.total_sorted == mw.stats.total_sorted
        assert summary.total_random == mw.stats.total_random


class TestFormatTraceSummary:
    def test_renders_key_facts(self):
        summary = summarize_trace(manual_log(), CostModel.uniform(2))
        text = format_trace_summary(summary)
        assert "total cost 5" in text
        assert "p0:" in text and "p1:" in text
        assert "phases:" in text
        assert "probed objects: 1" in text

    def test_truncates_long_phase_chains(self):
        log = []
        for i in range(30):
            log.append(Access.sorted(0))
            log.append(Access.random(0, i))
        # Wild alternation: 60 phases; rendering must truncate.
        summary = summarize_trace(log, CostModel.uniform(1))
        text = format_trace_summary(summary)
        assert "..." in text
