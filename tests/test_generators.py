"""Tests for the synthetic score-distribution generators."""

import numpy as np
import pytest

from repro.data.generators import (
    anticorrelated,
    clustered,
    correlated,
    gaussian,
    mixture,
    uniform,
    zipf_skewed,
)


ALL_GENERATORS = [
    lambda seed: uniform(400, 3, seed=seed),
    lambda seed: gaussian(400, 3, seed=seed),
    lambda seed: zipf_skewed(400, 3, seed=seed),
    lambda seed: correlated(400, 3, seed=seed),
    lambda seed: anticorrelated(400, 3, seed=seed),
    lambda seed: clustered(400, 3, seed=seed),
]


class TestCommonContract:
    @pytest.mark.parametrize("make", ALL_GENERATORS)
    def test_shape_and_range(self, make):
        ds = make(0)
        assert ds.n == 400
        assert ds.m == 3
        assert ds.matrix.min() >= 0.0
        assert ds.matrix.max() <= 1.0

    @pytest.mark.parametrize("make", ALL_GENERATORS)
    def test_deterministic_given_seed(self, make):
        assert np.array_equal(make(5).matrix, make(5).matrix)

    @pytest.mark.parametrize("make", ALL_GENERATORS)
    def test_seed_changes_data(self, make):
        assert not np.array_equal(make(1).matrix, make(2).matrix)


class TestUniform:
    def test_mean_near_half(self):
        ds = uniform(5000, 2, seed=0)
        assert ds.matrix.mean() == pytest.approx(0.5, abs=0.02)

    def test_accepts_generator_instance(self):
        rng = np.random.default_rng(3)
        ds = uniform(10, 2, seed=rng)
        assert ds.n == 10


class TestGaussian:
    def test_concentrates_near_mean(self):
        ds = gaussian(5000, 1, mean=0.7, std=0.05, seed=0)
        assert ds.matrix.mean() == pytest.approx(0.7, abs=0.02)
        assert ds.matrix.std() < 0.1


class TestZipfSkewed:
    def test_skew_pushes_mass_low(self):
        heavy = zipf_skewed(5000, 1, skew=3.0, seed=0)
        light = zipf_skewed(5000, 1, skew=1.0, seed=0)
        assert heavy.matrix.mean() < light.matrix.mean()

    def test_rejects_nonpositive_skew(self):
        with pytest.raises(ValueError):
            zipf_skewed(10, 1, skew=0.0)


class TestCorrelated:
    def test_high_rho_correlates_columns(self):
        ds = correlated(3000, 2, rho=0.9, seed=0)
        r = np.corrcoef(ds.matrix[:, 0], ds.matrix[:, 1])[0, 1]
        assert r > 0.6

    def test_zero_rho_independent(self):
        ds = correlated(3000, 2, rho=0.0, seed=0)
        r = np.corrcoef(ds.matrix[:, 0], ds.matrix[:, 1])[0, 1]
        assert abs(r) < 0.1

    def test_rejects_rho_out_of_range(self):
        with pytest.raises(ValueError):
            correlated(10, 2, rho=1.5)


class TestAnticorrelated:
    def test_columns_negatively_correlated(self):
        ds = anticorrelated(3000, 2, strength=0.9, seed=0)
        r = np.corrcoef(ds.matrix[:, 0], ds.matrix[:, 1])[0, 1]
        assert r < -0.2

    def test_rejects_strength_out_of_range(self):
        with pytest.raises(ValueError):
            anticorrelated(10, 2, strength=2.0)


class TestClustered:
    def test_scores_form_bands(self):
        ds = clustered(2000, 1, clusters=3, spread=0.01, seed=0)
        # With tiny spread, values concentrate around 3 centroids: the
        # number of distinct rounded values should be far below n.
        rounded = np.round(ds.matrix[:, 0], 1)
        assert len(np.unique(rounded)) <= 12

    def test_rejects_zero_clusters(self):
        with pytest.raises(ValueError):
            clustered(10, 1, clusters=0)


class TestMixture:
    def test_concatenates(self):
        a = uniform(10, 2, seed=0)
        b = uniform(5, 2, seed=1)
        mixed = mixture([a, b])
        assert mixed.n == 15
        assert np.array_equal(mixed.matrix[:10], a.matrix)

    def test_rejects_width_mismatch(self):
        with pytest.raises(ValueError):
            mixture([uniform(5, 2, seed=0), uniform(5, 3, seed=0)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            mixture([])
