"""Guard: docs/API.md stays in sync with the code's docstrings."""

import pathlib
import subprocess
import sys


def test_api_md_is_current():
    root = pathlib.Path(__file__).parent.parent
    generator = root / "tools" / "gen_api_docs.py"
    checked_in = (root / "docs" / "API.md").read_text()
    # Import the generator as a module and regenerate in-process.
    sys.path.insert(0, str(generator.parent))
    try:
        import gen_api_docs

        regenerated = gen_api_docs.generate()
    finally:
        sys.path.pop(0)
        sys.modules.pop("gen_api_docs", None)
    assert regenerated == checked_in, (
        "docs/API.md is stale; run `python tools/gen_api_docs.py`"
    )


def test_generator_runs_as_script():
    root = pathlib.Path(__file__).parent.parent
    proc = subprocess.run(
        [sys.executable, str(root / "tools" / "gen_api_docs.py")],
        capture_output=True,
        text=True,
        cwd=root,
    )
    assert proc.returncode == 0, proc.stderr
    assert "wrote" in proc.stdout
