"""Tests for the sampling toolbox: bootstrap, online, histogram."""

import numpy as np
import pytest

from repro.data.generators import uniform, zipf_skewed
from repro.exceptions import CapabilityError, WildGuessError
from repro.optimizer.sampling import (
    bootstrap_sample,
    dummy_uniform_sample,
    histogram_of,
    histogram_sample,
    online_sample,
    sample_from_dataset,
)
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware
from tests.conftest import mw_over


class TestBootstrapSample:
    def test_amplifies_size(self):
        base = dummy_uniform_sample(2, 50, seed=0)
        amplified = bootstrap_sample(base, 400, seed=1)
        assert amplified.n == 400
        assert amplified.m == 2

    def test_rows_come_from_base(self):
        base = dummy_uniform_sample(2, 10, seed=0)
        amplified = bootstrap_sample(base, 100, seed=1)
        base_rows = {tuple(row) for row in base.matrix}
        assert all(tuple(row) in base_rows for row in amplified.matrix)

    def test_preserves_mean(self):
        base = zipf_skewed(300, 1, skew=2.0, seed=2)
        amplified = bootstrap_sample(base, 5000, seed=3)
        assert amplified.matrix.mean() == pytest.approx(
            base.matrix.mean(), abs=0.03
        )

    def test_deterministic(self):
        base = dummy_uniform_sample(2, 20, seed=0)
        a = bootstrap_sample(base, 50, seed=4)
        b = bootstrap_sample(base, 50, seed=4)
        assert np.array_equal(a.matrix, b.matrix)

    def test_size_validated(self):
        with pytest.raises(ValueError):
            bootstrap_sample(dummy_uniform_sample(1, 5), 0)


class TestMinSampleKAmplification:
    def test_estimator_amplifies_when_needed(self):
        from repro.optimizer.estimator import CostEstimator
        from repro.scoring.functions import Min

        sample = dummy_uniform_sample(2, 100, seed=0)
        est = CostEstimator(
            sample, Min(2), 5, 2000, CostModel.uniform(2), min_sample_k=3
        )
        # Plain scaling gives k_s = max(1, round(5*100/2000)) = 1; the
        # sample is amplified to ceil(3*2000/5) = 1200 rows, so k_s = 3.
        assert est.sample_k >= 3
        assert est.sample.n > 100

    def test_no_amplification_when_ks_already_large(self):
        from repro.optimizer.estimator import CostEstimator
        from repro.scoring.functions import Min

        sample = dummy_uniform_sample(2, 100, seed=0)
        est = CostEstimator(
            sample, Min(2), 50, 500, CostModel.uniform(2), min_sample_k=3
        )
        assert est.sample.n == 100  # k_s = 10 already

    def test_cap_respected(self):
        from repro.optimizer.estimator import CostEstimator
        from repro.scoring.functions import Min

        sample = dummy_uniform_sample(2, 100, seed=0)
        est = CostEstimator(
            sample,
            Min(2),
            1,
            10**6,
            CostModel.uniform(2),
            min_sample_k=5,
            max_amplified_size=1000,
        )
        assert est.sample.n <= 1000

    def test_min_sample_k_validated(self):
        from repro.optimizer.estimator import CostEstimator
        from repro.scoring.functions import Min

        with pytest.raises(ValueError):
            CostEstimator(
                dummy_uniform_sample(2, 10, seed=0),
                Min(2),
                1,
                100,
                CostModel.uniform(2),
                min_sample_k=0,
            )


class TestOnlineSample:
    def test_collects_through_middleware_at_cost(self):
        data = uniform(200, 2, seed=5)
        mw = mw_over(data, CostModel.uniform(2, cs=1.0, cr=2.0),
                     no_wild_guesses=False)
        sample = online_sample(mw, 30, seed=1)
        assert sample.n == 30
        assert mw.stats.total_random == 60
        assert mw.stats.total_cost() == pytest.approx(120.0)

    def test_sample_rows_are_true_scores(self):
        data = uniform(50, 2, seed=6)
        mw = mw_over(data, no_wild_guesses=False)
        sample = online_sample(mw, 10, seed=2)
        true_rows = {tuple(np.round(row, 9)) for row in data.matrix}
        for row in sample.matrix:
            assert tuple(np.round(row, 9)) in true_rows

    def test_unbiased_mean_on_skewed_data(self):
        data = zipf_skewed(2000, 1, skew=2.0, seed=7)
        mw = mw_over(data, no_wild_guesses=False)
        sample = online_sample(mw, 400, seed=3)
        assert sample.matrix.mean() == pytest.approx(
            data.matrix.mean(), abs=0.05
        )

    def test_refuses_no_wild_guess_middleware(self, small_uniform):
        mw = mw_over(small_uniform)  # no_wild_guesses=True
        with pytest.raises(WildGuessError):
            online_sample(mw, 5)

    def test_requires_random_everywhere(self, small_uniform):
        mw = mw_over(small_uniform, CostModel.no_random(2), no_wild_guesses=False)
        with pytest.raises(CapabilityError):
            online_sample(mw, 5)

    def test_skips_touched_objects(self, small_uniform):
        mw = mw_over(small_uniform, no_wild_guesses=False)
        mw.random_access(0, 7)
        sample = online_sample(mw, 10, seed=4)
        assert sample.n == 10  # object 7 skipped, no duplicate errors


class TestHistogramSampling:
    def test_histogram_of_shape(self):
        counts, edges = histogram_of(np.linspace(0, 1, 100), bins=10)
        assert len(counts) == 10
        assert len(edges) == 11
        assert counts.sum() == 100

    def test_sample_matches_marginals(self):
        data = zipf_skewed(5000, 2, skew=2.0, seed=8)
        histograms = [histogram_of(data.column(i)) for i in range(2)]
        sample = histogram_sample(histograms, 5000, seed=5)
        for i in range(2):
            assert sample.column(i).mean() == pytest.approx(
                data.column(i).mean(), abs=0.03
            )

    def test_correlation_not_preserved(self):
        # Known limitation: histograms are per-predicate marginals.
        from repro.data.generators import correlated

        data = correlated(5000, 2, rho=0.95, seed=9)
        histograms = [histogram_of(data.column(i)) for i in range(2)]
        sample = histogram_sample(histograms, 5000, seed=6)
        r = np.corrcoef(sample.column(0), sample.column(1))[0, 1]
        assert abs(r) < 0.1

    def test_scores_stay_in_unit_interval(self):
        histograms = [histogram_of(np.array([0.0, 1.0, 1.0]))]
        sample = histogram_sample(histograms, 500, seed=7)
        assert sample.matrix.min() >= 0.0
        assert sample.matrix.max() <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            histogram_sample([], 10)
        with pytest.raises(ValueError):
            histogram_sample([(np.array([1, 2]), np.array([0.0, 1.0]))], 10)
        with pytest.raises(ValueError):
            histogram_sample([(np.zeros(5), np.linspace(0, 1, 6))], 10)


class TestSamplerIntegration:
    def test_histogram_sample_drives_optimizer(self):
        """Histogram knowledge is enough for the optimizer to find the
        selective-list plan on hotel-like data (the E6 lesson)."""
        from repro.data.travel import hotels_dataset
        from repro.optimizer.optimizer import NCOptimizer
        from repro.optimizer.search import NaiveGrid
        from repro.scoring.functions import Min

        data = hotels_dataset(1000, seed=13)
        histograms = [histogram_of(data.column(i)) for i in range(3)]
        sample = histogram_sample(histograms, 200, seed=8)
        model = CostModel.per_predicate(cs=[1, 1, 1], cr=[0, 0, 0])
        plan = NCOptimizer(scheme=NaiveGrid(4)).plan(
            sample, Min(3), 5, data.n, model, min_sample_k=3
        )
        # Free probes: at least one predicate should be probe-served.
        assert max(plan.depths) == 1.0
