"""Tests for the Dataset ground truth and its brute-force oracle."""

import numpy as np
import pytest

from repro.data.dataset import Dataset, dataset1
from repro.scoring.functions import Avg, Min


class TestConstruction:
    def test_basic_shape(self):
        ds = Dataset([[0.1, 0.2], [0.3, 0.4]])
        assert ds.n == 2
        assert ds.m == 2

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Dataset([[0.1, 1.2]])
        with pytest.raises(ValueError):
            Dataset([[-0.1, 0.5]])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            Dataset([[0.1, float("nan")]])

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError):
            Dataset([0.1, 0.2])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Dataset(np.empty((0, 2)))

    def test_matrix_is_read_only(self):
        ds = Dataset([[0.5, 0.5]])
        with pytest.raises(ValueError):
            ds.matrix[0, 0] = 0.1


class TestAccessors:
    def test_score(self):
        ds = Dataset([[0.1, 0.9], [0.4, 0.6]])
        assert ds.score(1, 0) == pytest.approx(0.4)

    def test_object_scores(self):
        ds = Dataset([[0.1, 0.9]])
        assert ds.object_scores(0) == (0.1, 0.9)

    def test_column(self):
        ds = Dataset([[0.1, 0.9], [0.4, 0.6]])
        assert list(ds.column(1)) == pytest.approx([0.9, 0.6])


class TestSortedOrder:
    def test_descending(self):
        ds = Dataset([[0.2], [0.9], [0.5]])
        assert list(ds.sorted_order(0)) == [1, 2, 0]

    def test_tie_broken_by_higher_oid(self):
        ds = Dataset([[0.5], [0.5], [0.3]])
        assert list(ds.sorted_order(0)) == [1, 0, 2]


class TestTopK:
    def test_matches_manual_ranking(self):
        ds = Dataset([[0.2, 0.8], [0.9, 0.9], [0.5, 0.1]])
        top = ds.topk(Min(2), 2)
        assert [entry.obj for entry in top] == [1, 0]
        assert top[0].score == pytest.approx(0.9)

    def test_k_capped_at_n(self):
        ds = Dataset([[0.5, 0.5]])
        assert len(ds.topk(Avg(2), 10)) == 1

    def test_k_must_be_positive(self):
        ds = Dataset([[0.5, 0.5]])
        with pytest.raises(ValueError):
            ds.topk(Avg(2), 0)

    def test_arity_mismatch(self):
        ds = Dataset([[0.5, 0.5]])
        with pytest.raises(ValueError):
            ds.topk(Min(3), 1)

    def test_tie_breaks_by_higher_oid(self):
        ds = Dataset([[0.5, 0.5], [0.5, 0.5]])
        top = ds.topk(Avg(2), 1)
        assert top[0].obj == 1


class TestSample:
    def test_sample_size(self):
        ds = Dataset(np.random.default_rng(0).random((100, 2)))
        sample = ds.sample(10, np.random.default_rng(1))
        assert sample.n == 10
        assert sample.m == 2

    def test_sample_rows_come_from_dataset(self):
        ds = Dataset([[0.1, 0.2], [0.3, 0.4], [0.5, 0.6]])
        sample = ds.sample(2, np.random.default_rng(1))
        originals = {tuple(row) for row in ds.matrix}
        for row in sample.matrix:
            assert tuple(row) in originals

    def test_oversampling_uses_replacement(self):
        ds = Dataset([[0.1, 0.2]])
        sample = ds.sample(5, np.random.default_rng(1))
        assert sample.n == 5

    def test_sample_rejects_zero(self):
        ds = Dataset([[0.1, 0.2]])
        with pytest.raises(ValueError):
            ds.sample(0, np.random.default_rng(1))


class TestDataset1:
    def test_shape(self, ds1):
        assert ds1.n == 3
        assert ds1.m == 2

    def test_sorted_p1_returns_paper_sequence(self, ds1):
        # Sorted access on p_1 yields scores .7, .65, .6 (Figure 3).
        order = ds1.sorted_order(0)
        scores = [ds1.score(obj, 0) for obj in order]
        assert scores == pytest.approx([0.70, 0.65, 0.60])

    def test_top1_is_u3_with_07(self, ds1):
        # Example 6: the top-1 under F=min is u3 with score .7.
        top = ds1.topk(Min(2), 1)
        assert top[0].obj == 2
        assert top[0].score == pytest.approx(0.7)
