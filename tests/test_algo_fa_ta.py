"""Tests for Fagin's Algorithm and the Threshold Algorithm."""

import pytest

from repro.algorithms.fa import FA
from repro.algorithms.ta import TA
from repro.data.dataset import Dataset
from repro.data.generators import correlated, uniform, zipf_skewed
from repro.exceptions import CapabilityError
from repro.scoring.functions import Avg, Min
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware
from tests.conftest import assert_valid_topk, mw_over


class TestFACorrectness:
    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_valid_topk(self, small_uniform, k):
        mw = mw_over(small_uniform)
        result = FA().run(mw, Min(2), k)
        assert_valid_topk(result, small_uniform, Min(2), k)

    def test_three_predicates(self, medium_uniform):
        mw = mw_over(medium_uniform)
        result = FA().run(mw, Avg(3), 4)
        assert_valid_topk(result, medium_uniform, Avg(3), 4)

    def test_correlated_data_stops_early(self):
        # With perfectly correlated lists, the k-th intersection object
        # appears after ~k accesses per list -- FA's best case.
        data = correlated(200, 2, rho=1.0, seed=1)
        mw = mw_over(data)
        FA().run(mw, Avg(2), 5)
        assert mw.stats.total_sorted <= 2 * 10

    def test_k_exceeds_n(self, ds1):
        mw = mw_over(ds1)
        result = FA().run(mw, Min(2), 10)
        assert len(result.ranking) == 3


class TestFARequirements:
    def test_requires_random(self, small_uniform):
        mw = Middleware.over(small_uniform, CostModel.no_random(2))
        with pytest.raises(CapabilityError):
            FA().run(mw, Min(2), 1)

    def test_requires_sorted(self, small_uniform):
        mw = Middleware.over(
            small_uniform, CostModel.no_sorted(2), no_wild_guesses=False
        )
        with pytest.raises(CapabilityError):
            FA().run(mw, Min(2), 1)


class TestFABehaviour:
    def test_probes_every_seen_object(self, small_uniform):
        """FA's signature: exhaustive random phase over all seen objects."""
        mw = mw_over(small_uniform)
        FA().run(mw, Min(2), 2)
        seen = len(mw.seen)
        # Every seen object ends fully evaluated: delivered + probed = 2*seen.
        assert mw.stats.total_sorted + mw.stats.total_random == 2 * seen


class TestTACorrectness:
    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_valid_topk(self, small_uniform, k):
        mw = mw_over(small_uniform)
        result = TA().run(mw, Min(2), k)
        assert_valid_topk(result, small_uniform, Min(2), k)

    @pytest.mark.parametrize("make", [uniform, zipf_skewed])
    def test_distributions(self, make):
        data = make(150, 2, seed=3)
        mw = mw_over(data)
        result = TA().run(mw, Avg(2), 5)
        assert_valid_topk(result, data, Avg(2), 5)

    def test_three_predicates(self, medium_uniform):
        mw = mw_over(medium_uniform)
        result = TA().run(mw, Min(3), 5)
        assert_valid_topk(result, medium_uniform, Min(3), 5)

    def test_massive_ties(self):
        data = Dataset([[0.5, 0.5]] * 10)
        mw = mw_over(data)
        result = TA().run(mw, Avg(2), 3)
        assert result.scores == pytest.approx([0.5, 0.5, 0.5])

    def test_k_exceeds_n(self, ds1):
        mw = mw_over(ds1)
        result = TA().run(mw, Min(2), 10)
        assert len(result.ranking) == 3


class TestTARequirements:
    def test_requires_random(self, small_uniform):
        mw = Middleware.over(small_uniform, CostModel.no_random(2))
        with pytest.raises(CapabilityError):
            TA().run(mw, Min(2), 1)


class TestTABehaviour:
    def test_equal_depth_descent(self, small_uniform):
        """TA's sorted accesses stay within one round across lists."""
        mw = mw_over(small_uniform)
        TA().run(mw, Avg(2), 3)
        counts = mw.stats.sorted_counts
        assert abs(counts[0] - counts[1]) <= 1

    def test_every_seen_object_fully_evaluated(self, small_uniform):
        """TA's exhaustive-random-access signature (Section 8.1): every
        score of every seen object has been delivered by halt time."""
        mw = mw_over(small_uniform)
        TA().run(mw, Min(2), 2)
        for obj in mw.seen:
            for i in range(mw.m):
                assert mw.was_delivered(i, obj)

    def test_stops_before_exhausting_lists(self, small_uniform):
        mw = mw_over(small_uniform)
        TA().run(mw, Avg(2), 1)
        assert mw.stats.total_sorted < 2 * small_uniform.n

    def test_beats_fa_when_intersection_forms_late(self):
        """TA's early stop dominates FA's intersection rule when the lists
        disagree (the historical motivation for TA)."""
        data = zipf_skewed(300, 2, skew=3.0, seed=5)
        mw_ta, mw_fa = mw_over(data), mw_over(data)
        TA().run(mw_ta, Avg(2), 5)
        FA().run(mw_fa, Avg(2), 5)
        assert mw_ta.stats.total_cost() <= mw_fa.stats.total_cost()
