"""Tests for the benchmark harness: scenarios, runners, reporting."""

import pytest

from repro.algorithms.nra import NRA
from repro.algorithms.ta import TA
from repro.bench.harness import (
    compare,
    nc_with_dummy_planner,
    nc_with_true_sample_planner,
    run_algorithm,
    verify,
)
from repro.bench.reporting import (
    ascii_table,
    format_row,
    relative_series,
    text_contour,
)
from repro.bench.scenarios import (
    Scenario,
    matrix_scenarios,
    s1,
    s2,
    travel_q1,
    travel_q2,
)
from repro.data.generators import uniform
from repro.optimizer.search import Strategies
from repro.scoring.functions import Min
from repro.sources.cost import CostModel


class TestScenarios:
    def test_s1_shape(self):
        sc = s1(n=200, k=5)
        assert sc.m == 2
        assert sc.fn.name == "avg[2]"
        assert sc.cost_model.cs == (1.0, 1.0)
        assert sc.no_wild_guesses

    def test_s2_uses_min(self):
        assert s2(n=100).fn.name == "min[2]"

    def test_matrix_covers_all_cells(self):
        cells = {sc.name for sc in matrix_scenarios(n=50)}
        assert cells == {
            "uniform",
            "expensive-ra",
            "no-ra",
            "no-sa",
            "cheap-ra",
            "zero-ra",
        }

    def test_no_sa_cell_allows_wild_guesses(self):
        cell = next(sc for sc in matrix_scenarios(n=50) if sc.name == "no-sa")
        assert not cell.no_wild_guesses
        mw = cell.middleware()
        assert list(mw.object_ids()) == list(range(50))

    def test_oracle_cached(self):
        sc = s1(n=100, k=3)
        assert sc.oracle() is sc.oracle()

    def test_middleware_fresh_each_call(self):
        sc = s1(n=100, k=3)
        mw1 = sc.middleware()
        mw1.sorted_access(0)
        mw2 = sc.middleware()
        assert mw2.stats.total_accesses == 0

    def test_with_cost_model(self):
        sc = s1(n=100, k=3)
        alt = sc.with_cost_model(CostModel.no_random(2), name="S1-nr")
        assert alt.name == "S1-nr"
        assert not alt.cost_model.supports_random(0)
        assert alt.dataset is sc.dataset

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Scenario(
                name="bad",
                description="",
                dataset=uniform(10, 2, seed=0),
                fn=Min(3),
                k=1,
                cost_model=CostModel.uniform(2),
            )

    def test_travel_scenarios_build(self):
        q1 = travel_q1(n=100)
        q2 = travel_q2(n=100)
        assert q1.m == 2 and q2.m == 3
        assert q2.cost_model.cr == (0.0, 0.0, 0.0)


class TestHarness:
    def test_run_algorithm_row(self):
        sc = s2(n=150, k=5)
        row = run_algorithm(TA(), sc)
        assert row.correct
        assert row.cost == row.result.total_cost()
        assert row.scenario == "S2"
        assert row.sorted_accesses > 0

    def test_compare_skips_incapable(self):
        cell = next(sc for sc in matrix_scenarios(n=80) if sc.name == "no-ra")
        rows = compare(cell, [TA(), NRA()])
        assert [r.algorithm for r in rows] == ["NRA"]

    def test_compare_raises_when_asked(self):
        from repro.exceptions import CapabilityError

        cell = next(sc for sc in matrix_scenarios(n=80) if sc.name == "no-ra")
        with pytest.raises(CapabilityError):
            compare(cell, [TA()], skip_incapable=False)

    def test_nc_dummy_planner_correct_everywhere(self):
        nc = nc_with_dummy_planner(scheme=Strategies(), sample_size=60)
        for sc in matrix_scenarios(n=120, k=5):
            row = run_algorithm(nc, sc)
            assert row.correct, sc.name

    def test_nc_true_sample_planner(self):
        sc = s2(n=200, k=5)
        nc = nc_with_true_sample_planner(sc, sample_size=60)
        row = run_algorithm(nc, sc)
        assert row.correct

    def test_verify_rejects_wrong_answer(self):
        sc = s1(n=50, k=2)
        row = run_algorithm(TA(), sc)
        good = row.result
        assert verify(good, sc)
        bad = type(good)(
            ranking=good.ranking[:1], stats=good.stats, algorithm="bad"
        )
        assert not verify(bad, sc)


class TestReporting:
    def test_format_row_alignment(self):
        line = format_row(["x", 1.0, 25], [4, 8, 4])
        assert "x" in line and "1.0" in line and "25" in line

    def test_ascii_table_renders_all_rows(self):
        table = ascii_table(
            ["algo", "cost"], [["TA", 12.5], ["NC", 8.0]], title="demo"
        )
        lines = table.splitlines()
        assert lines[0] == "demo"
        assert "TA" in table and "12.5" in table and "NC" in table

    def test_text_contour_marks_cell(self):
        grid = [[1.0, 2.0], [3.0, 4.0]]
        art = text_contour(grid, [0.0, 1.0], [0.0, 1.0], mark=(0, 0))
        assert "[" in art and "]" in art

    def test_text_contour_constant_grid(self):
        art = text_contour([[5.0, 5.0]], [0.0, 1.0], [0.5])
        assert art  # no division by zero on flat surfaces

    def test_relative_series(self):
        rows = relative_series(200.0, [("NC", 100.0), ("TA", 200.0)])
        assert rows[0] == ("NC", 100.0, 50.0)
        assert rows[1][2] == pytest.approx(100.0)

    def test_relative_series_validates_baseline(self):
        with pytest.raises(ValueError):
            relative_series(0.0, [("x", 1.0)])
