"""Baseline ratchet semantics and the suppression/baseline interaction.

The ratchet only tightens: new findings fail, absorbed findings are
recorded debt, and *stale* entries (debt that was fixed, or silenced by
a reviewed per-line suppression) also fail until ``--update-baseline``
shrinks the file. Suppressions run before baseline matching, so a
``# repro-lint: ignore[...]`` line always wins over a baseline entry.
"""

import json
import textwrap

import pytest

from repro.cli import main as cli_main
from repro.exceptions import ReproError
from repro.lint import run_lint
from repro.lint.baseline import (
    load_baseline,
    match_baseline,
    render_baseline,
    write_baseline,
)

VIOLATION = """
import random

def jitter():
    return random.random()
"""


def write_violation(tmp_path, name="mod.py", suppressed=False):
    source = textwrap.dedent(VIOLATION)
    if suppressed:
        source = source.replace(
            "random.random()",
            "random.random()  # repro-lint: ignore[RL002] -- reviewed",
        )
    path = tmp_path / name
    path.write_text(source)
    return path


class TestMatching:
    def test_absorbed_new_and_stale_partition(self, tmp_path):
        path = write_violation(tmp_path)
        findings = run_lint([path]).findings
        assert len(findings) == 1

        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, findings)
        match = match_baseline(findings, load_baseline(baseline_path))
        assert match.ok
        assert match.absorbed == {0}
        assert match.new == [] and match.stale == []

    def test_count_bounds_absorption(self, tmp_path):
        # Two identical findings against a count-1 entry: one absorbed,
        # one new -- an entry never soaks up duplicates of the bug.
        path = write_violation(tmp_path)
        single = run_lint([path]).findings
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, single)

        doubled = single + single
        match = match_baseline(doubled, load_baseline(baseline_path))
        assert not match.ok
        assert match.absorbed == {0}
        assert len(match.new) == 1

    def test_fixed_finding_makes_entry_stale(self, tmp_path):
        path = write_violation(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, run_lint([path]).findings)

        path.write_text("x = 1\n")  # bug fixed, entry still recorded
        match = match_baseline(
            run_lint([path]).findings, load_baseline(baseline_path)
        )
        assert not match.ok
        assert match.new == []
        assert len(match.stale) == 1
        rule, _, _, count = match.stale[0]
        assert (rule, count) == ("RL002", 1)

    def test_suppression_wins_over_baseline_and_stales_it(self, tmp_path):
        # A reviewed per-line ignore removes the finding *before*
        # baseline matching, so the entry turns stale and the ratchet
        # demands the file shrink.
        path = write_violation(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, run_lint([path]).findings)

        write_violation(tmp_path, suppressed=True)
        findings = run_lint([path]).findings
        assert findings == []  # suppression won
        match = match_baseline(findings, load_baseline(baseline_path))
        assert match.new == []
        assert len(match.stale) == 1

    def test_rejects_malformed_and_wrong_version_files(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        with pytest.raises(ReproError, match="cannot read"):
            load_baseline(bad)
        bad.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ReproError, match="version"):
            load_baseline(bad)

    def test_render_is_sorted_and_counted(self, tmp_path):
        path = write_violation(tmp_path)
        findings = run_lint([path]).findings
        payload = json.loads(render_baseline(findings + findings))
        assert payload["version"] == 1
        assert payload["findings"][0]["count"] == 2


class TestCLI:
    def test_baseline_absorbs_and_exits_zero(self, tmp_path, capsys):
        path = write_violation(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        assert (
            cli_main(
                [
                    "lint",
                    str(path),
                    "--baseline",
                    str(baseline_path),
                    "--update-baseline",
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = cli_main(
            ["lint", str(path), "--baseline", str(baseline_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "0 findings" in out  # absorbed debt is not re-reported

    def test_new_finding_fails_despite_baseline(self, tmp_path, capsys):
        path = write_violation(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        cli_main(
            [
                "lint",
                str(path),
                "--baseline",
                str(baseline_path),
                "--update-baseline",
            ]
        )
        capsys.readouterr()
        other = write_violation(tmp_path, name="other.py")
        code = cli_main(
            [
                "lint",
                str(path),
                str(other),
                "--baseline",
                str(baseline_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "other.py" in out

    def test_stale_entry_fails_and_points_at_update(self, tmp_path, capsys):
        path = write_violation(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        cli_main(
            [
                "lint",
                str(path),
                "--baseline",
                str(baseline_path),
                "--update-baseline",
            ]
        )
        path.write_text("x = 1\n")
        capsys.readouterr()
        code = cli_main(
            ["lint", str(path), "--baseline", str(baseline_path)]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "stale baseline entry" in captured.err
        assert "--update-baseline" in captured.err

    def test_update_baseline_requires_baseline_path(self, tmp_path, capsys):
        path = write_violation(tmp_path)
        code = cli_main(["lint", str(path), "--update-baseline"])
        assert code == 2
        assert "requires --baseline" in capsys.readouterr().err


class TestPathNormalization:
    """The satellite fix: ``./`` and absolute spellings match allowlists."""

    DIRECT_ACCESS = """
    def probe(source):
        return source.sorted_access()
    """

    def _write(self, tmp_path, rel):
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(self.DIRECT_ACCESS))
        return path

    @pytest.mark.parametrize("spelling", ["relative", "dot", "absolute"])
    def test_allowlisted_path_recognized_in_all_spellings(
        self, tmp_path, monkeypatch, capsys, spelling
    ):
        # tests/* is on RL001's allowlist: the direct access is legal
        # there no matter how the CLI names the file.
        self._write(tmp_path, "tests/fixture.py")
        monkeypatch.chdir(tmp_path)
        arg = {
            "relative": "tests/fixture.py",
            "dot": "./tests/fixture.py",
            "absolute": str(tmp_path / "tests" / "fixture.py"),
        }[spelling]
        code = cli_main(["lint", arg, "--select", "RL001"])
        out = capsys.readouterr().out
        assert code == 0, out

    @pytest.mark.parametrize("spelling", ["relative", "dot", "absolute"])
    def test_violation_still_caught_in_all_spellings(
        self, tmp_path, monkeypatch, capsys, spelling
    ):
        self._write(tmp_path, "app/engine.py")
        monkeypatch.chdir(tmp_path)
        arg = {
            "relative": "app/engine.py",
            "dot": "./app/engine.py",
            "absolute": str(tmp_path / "app" / "engine.py"),
        }[spelling]
        code = cli_main(["lint", arg, "--select", "RL001"])
        out = capsys.readouterr().out
        assert code == 1
        assert "RL001" in out

    def test_baseline_is_portable_across_working_directories(
        self, tmp_path, monkeypatch, capsys
    ):
        # A baseline recorded with in-repo relative spellings must absorb
        # the same findings when the linter is later invoked from an
        # unrelated cwd with absolute paths: entries are stored relative
        # to the baseline file, not to whoever's cwd wrote them.
        proj = tmp_path / "proj"
        self._write(proj, "app/engine.py")
        baseline = proj / "baseline.json"
        monkeypatch.chdir(proj)
        cli_main(
            [
                "lint",
                "app/engine.py",
                "--select",
                "RL001",
                "--baseline",
                str(baseline),
                "--update-baseline",
            ]
        )
        capsys.readouterr()
        elsewhere = tmp_path / "elsewhere"
        elsewhere.mkdir()
        monkeypatch.chdir(elsewhere)
        code = cli_main(
            [
                "lint",
                str(proj / "app" / "engine.py"),
                "--select",
                "RL001",
                "--baseline",
                str(baseline),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "0 findings" in out
