"""Tests for the CostModel (Eq. 1 unit costs and capability encoding)."""

import math

import pytest

from repro.sources.cost import CostModel
from repro.types import Access


class TestConstruction:
    def test_basic(self):
        model = CostModel((1.0, 2.0), (3.0, 4.0))
        assert model.m == 2
        assert model.sorted_cost(1) == 2.0
        assert model.random_cost(0) == 3.0

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            CostModel((1.0,), (1.0, 2.0))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CostModel((), ())

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CostModel((-1.0,), (1.0,))

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            CostModel((float("nan"),), (1.0,))

    def test_rejects_predicate_with_no_access_at_all(self):
        with pytest.raises(ValueError):
            CostModel((math.inf,), (math.inf,))

    def test_zero_cost_is_legal(self):
        # Example 2: random accesses piggybacking on sorted are free.
        model = CostModel.uniform(2, cs=1.0, cr=0.0)
        assert model.random_cost(0) == 0.0
        assert model.supports_random(0)


class TestCapabilities:
    def test_inf_means_unsupported(self):
        model = CostModel((1.0, math.inf), (math.inf, 1.0))
        assert model.supports_sorted(0) and not model.supports_sorted(1)
        assert not model.supports_random(0) and model.supports_random(1)
        assert model.sorted_capabilities == [True, False]
        assert model.random_capabilities == [False, True]


class TestNamedConstructors:
    def test_uniform(self):
        model = CostModel.uniform(3, cs=2.0, cr=5.0)
        assert model.cs == (2.0, 2.0, 2.0)
        assert model.cr == (5.0, 5.0, 5.0)

    def test_expensive_random(self):
        model = CostModel.expensive_random(2, cs=1.0, ratio=10.0)
        assert model.cr == (10.0, 10.0)

    def test_cheap_random(self):
        model = CostModel.cheap_random(2, cs=1.0, ratio=4.0)
        assert model.cr == (0.25, 0.25)

    def test_no_random(self):
        model = CostModel.no_random(2)
        assert all(math.isinf(c) for c in model.cr)
        assert not model.supports_random(0)

    def test_no_sorted(self):
        model = CostModel.no_sorted(2)
        assert all(math.isinf(c) for c in model.cs)

    def test_per_predicate(self):
        model = CostModel.per_predicate(cs=[1, 2], cr=[3, 4])
        assert model.cs == (1.0, 2.0)


class TestAccessCost:
    def test_dispatch(self):
        model = CostModel((1.0, 2.0), (3.0, 4.0))
        assert model.access_cost(Access.sorted(1)) == 2.0
        assert model.access_cost(Access.random(0, 7)) == 3.0


class TestScale:
    def test_scales_finite_costs(self):
        model = CostModel.uniform(2, cs=1.0, cr=2.0).scale(3.0)
        assert model.cs == (3.0, 3.0)
        assert model.cr == (6.0, 6.0)

    def test_preserves_infinities(self):
        model = CostModel.no_random(2).scale(2.0)
        assert all(math.isinf(c) for c in model.cr)

    def test_rejects_negative_factor(self):
        with pytest.raises(ValueError):
            CostModel.uniform(1).scale(-1.0)


class TestDescribe:
    def test_renders_infinities_as_dashes(self):
        text = CostModel.no_random(1).describe()
        assert "--" in text
        assert "cs=(1)" in text
