"""Tests for SimulatedSource: the Section 3.2 access interface."""

import pytest

from repro.data.dataset import Dataset, dataset1
from repro.exceptions import CapabilityError
from repro.sources.simulated import SimulatedSource, sources_for


class TestSortedAccess:
    def test_descending_order(self, ds1):
        src = SimulatedSource(ds1, 0)
        scores = [src.sorted_access()[1] for _ in range(3)]
        assert scores == pytest.approx([0.70, 0.65, 0.60])

    def test_progressive_distinct_objects(self, ds1):
        src = SimulatedSource(ds1, 0)
        objs = [src.sorted_access()[0] for _ in range(3)]
        assert sorted(objs) == [0, 1, 2]  # each object delivered exactly once

    def test_last_seen_tracks_delivered_score(self, ds1):
        src = SimulatedSource(ds1, 1)
        assert src.last_seen == 1.0
        obj, score = src.sorted_access()
        assert src.last_seen == pytest.approx(score)

    def test_exhaustion_returns_none_and_zeroes_bound(self, ds1):
        src = SimulatedSource(ds1, 0)
        for _ in range(3):
            src.sorted_access()
        assert src.exhausted
        assert src.sorted_access() is None
        assert src.last_seen == 0.0

    def test_last_seen_drops_to_zero_on_final_delivery(self, ds1):
        # Delivering the last element removes every unseen object, so the
        # bound collapses immediately rather than after one extra call.
        src = SimulatedSource(ds1, 0)
        for _ in range(3):
            src.sorted_access()
        assert src.last_seen == 0.0

    def test_depth_counts_accesses(self, ds1):
        src = SimulatedSource(ds1, 0)
        src.sorted_access()
        src.sorted_access()
        assert src.depth == 2

    def test_tie_break_higher_oid_first(self):
        ds = Dataset([[0.5], [0.5]])
        src = SimulatedSource(ds, 0)
        assert src.sorted_access()[0] == 1
        assert src.sorted_access()[0] == 0

    def test_unsupported_raises(self, ds1):
        src = SimulatedSource(ds1, 0, sorted_capable=False)
        with pytest.raises(CapabilityError):
            src.sorted_access()
        assert not src.exhausted  # exhaustion is a sorted-list concept


class TestRandomAccess:
    def test_exact_score(self, ds1):
        src = SimulatedSource(ds1, 1)
        assert src.random_access(2) == pytest.approx(0.70)

    def test_no_side_effect_on_last_seen(self, ds1):
        src = SimulatedSource(ds1, 1)
        src.random_access(0)
        assert src.last_seen == 1.0

    def test_unsupported_raises(self, ds1):
        src = SimulatedSource(ds1, 1, random_capable=False)
        with pytest.raises(CapabilityError):
            src.random_access(0)

    def test_out_of_range_object(self, ds1):
        src = SimulatedSource(ds1, 0)
        with pytest.raises(ValueError):
            src.random_access(99)


class TestLifecycle:
    def test_reset_rewinds_cursor(self, ds1):
        src = SimulatedSource(ds1, 0)
        first = src.sorted_access()
        src.reset()
        assert src.depth == 0
        assert src.last_seen == 1.0
        assert src.sorted_access() == first

    def test_requires_some_capability(self, ds1):
        with pytest.raises(ValueError):
            SimulatedSource(ds1, 0, sorted_capable=False, random_capable=False)

    def test_predicate_out_of_range(self, ds1):
        with pytest.raises(ValueError):
            SimulatedSource(ds1, 5)


class TestSourcesFor:
    def test_default_fully_capable(self, ds1):
        sources = sources_for(ds1)
        assert len(sources) == 2
        assert all(s.supports_sorted and s.supports_random for s in sources)

    def test_capability_lists(self, ds1):
        sources = sources_for(ds1, sorted_capable=[True, False], random_capable=[False, True])
        assert sources[0].supports_sorted and not sources[0].supports_random
        assert not sources[1].supports_sorted and sources[1].supports_random

    def test_capability_length_mismatch(self, ds1):
        with pytest.raises(ValueError):
            sources_for(ds1, sorted_capable=[True])
