"""Exception-hierarchy contract: ancestry, catchability, fault context."""

import pytest

from repro.exceptions import (
    BudgetExceededError,
    CapabilityError,
    DuplicateAccessError,
    ExhaustedSourceError,
    NotMonotoneError,
    OptimizationError,
    ReproError,
    RetryExhaustedError,
    SourceFaultError,
    SourceTimeoutError,
    SourceUnavailableError,
    TransientSourceError,
    UnanswerableQueryError,
    WildGuessError,
)

ALL_ERRORS = [
    CapabilityError,
    WildGuessError,
    DuplicateAccessError,
    ExhaustedSourceError,
    UnanswerableQueryError,
    NotMonotoneError,
    OptimizationError,
    BudgetExceededError,
    SourceFaultError,
    TransientSourceError,
    SourceTimeoutError,
    SourceUnavailableError,
    RetryExhaustedError,
]

FAULT_ERRORS = [
    SourceFaultError,
    TransientSourceError,
    SourceTimeoutError,
    SourceUnavailableError,
    RetryExhaustedError,
]


class TestHierarchy:
    @pytest.mark.parametrize("exc_type", ALL_ERRORS)
    def test_every_library_error_derives_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)
        assert issubclass(exc_type, Exception)

    @pytest.mark.parametrize("exc_type", FAULT_ERRORS)
    def test_fault_family_derives_from_source_fault_error(self, exc_type):
        assert issubclass(exc_type, SourceFaultError)

    def test_timeout_is_transient(self):
        # Timeouts must be caught by retry loops handling transient faults.
        assert issubclass(SourceTimeoutError, TransientSourceError)

    def test_permanent_outage_is_not_transient(self):
        assert not issubclass(SourceUnavailableError, TransientSourceError)

    def test_one_except_clause_catches_everything(self):
        caught = []
        for exc_type in ALL_ERRORS:
            try:
                if issubclass(exc_type, SourceFaultError):
                    raise exc_type("boom", predicate=0)
                raise exc_type("boom")
            except ReproError as exc:
                caught.append(exc)
        assert len(caught) == len(ALL_ERRORS)


class TestFaultContext:
    def test_message_carries_predicate_object_and_kind(self):
        exc = TransientSourceError(
            "connection reset", predicate=2, obj=17, kind="random"
        )
        text = str(exc)
        assert "connection reset" in text
        assert "predicate 2" in text
        assert "object 17" in text
        assert "random access" in text
        assert exc.predicate == 2 and exc.obj == 17 and exc.kind == "random"

    def test_sorted_access_context_has_no_object(self):
        exc = SourceTimeoutError("deadline exceeded", predicate=1, kind="sorted")
        assert exc.obj is None
        assert "object" not in str(exc)
        assert "predicate 1" in str(exc)

    def test_context_is_optional(self):
        exc = SourceUnavailableError("all replicas down")
        assert str(exc) == "all replicas down"
        assert exc.predicate is None and exc.obj is None and exc.kind is None

    def test_retry_exhausted_carries_attempts_and_cause(self):
        cause = TransientSourceError("503", predicate=0, kind="sorted")
        exc = RetryExhaustedError(
            "all 5 attempt(s) failed",
            predicate=0,
            kind="sorted",
            attempts=5,
            last_error=cause,
        )
        assert exc.attempts == 5
        assert exc.last_error is cause
        assert "predicate 0" in str(exc)

    def test_fault_errors_raised_by_middleware_carry_access_context(self):
        # End-to-end: the error an algorithm sees names the failed access.
        from repro.data.generators import uniform
        from repro.faults import FaultProfile, RetryPolicy, chaos_middleware
        from repro.sources.cost import CostModel

        data = uniform(30, 2, seed=1)
        mw = chaos_middleware(
            data,
            CostModel.uniform(2),
            FaultProfile.transient(1.0),  # every attempt fails
            retry_policy=RetryPolicy(max_attempts=2),
        )
        with pytest.raises(RetryExhaustedError) as info:
            mw.sorted_access(0)
        assert info.value.predicate == 0
        assert info.value.kind == "sorted"
        assert info.value.attempts == 2
        assert isinstance(info.value.last_error, TransientSourceError)
