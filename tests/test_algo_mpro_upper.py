"""Tests for MPro and Upper (the sorted-access-impossible column)."""

import pytest

from repro.algorithms.mpro import MPro
from repro.algorithms.upper import Upper
from repro.data.generators import uniform, zipf_skewed
from repro.exceptions import CapabilityError
from repro.scoring.functions import Avg, Min, WeightedSum
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware
from tests.conftest import assert_valid_topk, mw_over


def probe_only(dataset, cr=None):
    model = (
        CostModel.no_sorted(dataset.m)
        if cr is None
        else CostModel(tuple([float("inf")] * dataset.m), tuple(cr))
    )
    return Middleware.over(dataset, model, no_wild_guesses=False)


class TestMProCorrectness:
    @pytest.mark.parametrize("k", [1, 5])
    def test_valid_topk(self, small_uniform, k):
        mw = probe_only(small_uniform)
        result = MPro().run(mw, Min(2), k)
        assert_valid_topk(result, small_uniform, Min(2), k)

    def test_three_predicates(self, medium_uniform):
        mw = probe_only(medium_uniform)
        result = MPro().run(mw, Avg(3), 4)
        assert_valid_topk(result, medium_uniform, Avg(3), 4)

    def test_custom_schedule(self, small_uniform):
        mw = probe_only(small_uniform)
        result = MPro(schedule=[1, 0]).run(mw, Min(2), 3)
        assert_valid_topk(result, small_uniform, Min(2), 3)
        assert result.metadata["schedule"] == (1, 0)

    def test_invalid_schedule(self, small_uniform):
        mw = probe_only(small_uniform)
        with pytest.raises(ValueError):
            MPro(schedule=[0, 0]).run(mw, Min(2), 1)

    def test_requires_universe(self, small_uniform):
        mw = mw_over(small_uniform)  # no_wild_guesses=True
        with pytest.raises(CapabilityError):
            MPro().run(mw, Min(2), 1)

    def test_k_exceeds_n(self, ds1):
        mw = probe_only(ds1)
        result = MPro().run(mw, Min(2), 10)
        assert len(result.ranking) == 3


class TestMProBehaviour:
    def test_never_sorted_accesses(self, small_uniform):
        mw = probe_only(small_uniform)
        MPro().run(mw, Min(2), 3)
        assert mw.stats.total_sorted == 0

    def test_minimal_probing_beats_exhaustive(self, small_uniform):
        """MPro probes far fewer than full evaluation (2n)."""
        mw = probe_only(small_uniform)
        MPro().run(mw, Min(2), 1)
        assert mw.stats.total_random < 2 * small_uniform.n

    def test_schedule_order_affects_cost_on_skewed_predicates(self):
        # p1 is highly selective (skewed low): probing it first prunes
        # aggressively, so the (1, 0) schedule should not lose to (0, 1).
        from repro.data.dataset import Dataset
        import numpy as np

        rng = np.random.default_rng(0)
        p0 = rng.random(300) * 0.5 + 0.5  # uniformly high
        p1 = rng.random(300) ** 4  # mostly tiny
        data = Dataset(np.column_stack([p0, p1]))
        mw_01, mw_10 = probe_only(data), probe_only(data)
        MPro(schedule=[0, 1]).run(mw_01, Min(2), 5)
        MPro(schedule=[1, 0]).run(mw_10, Min(2), 5)
        assert (
            mw_10.stats.total_random <= mw_01.stats.total_random
        ), "probing the selective predicate first should prune more"


class TestUpperCorrectness:
    @pytest.mark.parametrize("k", [1, 5])
    def test_probe_only_valid_topk(self, small_uniform, k):
        mw = probe_only(small_uniform)
        result = Upper().run(mw, Min(2), k)
        assert_valid_topk(result, small_uniform, Min(2), k)

    def test_mixed_scenario_with_sorted_sources(self, small_uniform):
        mw = mw_over(small_uniform)
        result = Upper().run(mw, Min(2), 3)
        assert_valid_topk(result, small_uniform, Min(2), 3)

    def test_sorted_only_predicate_handled(self, small_uniform):
        model = CostModel((1.0, 1.0), (float("inf"), 1.0))
        mw = Middleware.over(small_uniform, model)
        result = Upper().run(mw, Min(2), 3)
        assert_valid_topk(result, small_uniform, Min(2), 3)

    def test_expected_scores_validated(self, small_uniform):
        mw = probe_only(small_uniform)
        with pytest.raises(ValueError):
            Upper(expected_scores=[0.5]).run(mw, Min(2), 1)

    def test_rejects_undiscoverable_setting(self, small_uniform):
        mw = Middleware.over(small_uniform, CostModel.no_sorted(2))
        with pytest.raises(CapabilityError):
            Upper().run(mw, Min(2), 1)


class TestUpperBehaviour:
    def test_weighted_function_prefers_heavy_predicate(self):
        """Upper probes the high-weight predicate first: it shrinks the
        bound most per unit cost."""
        data = uniform(200, 2, seed=6)
        fn = WeightedSum([0.9, 0.1])
        mw = probe_only(data)
        Upper().run(mw, fn, 3)
        counts = mw.stats.random_counts
        assert counts[0] > counts[1]

    def test_cost_aware_probe_choice(self):
        """With equal benefit, the cheaper probe wins."""
        data = uniform(200, 2, seed=6)
        mw = probe_only(data, cr=[1.0, 20.0])
        Upper().run(mw, Avg(2), 3)
        counts = mw.stats.random_counts
        assert counts[0] > counts[1]

    def test_probe_only_never_sorted(self, small_uniform):
        mw = probe_only(small_uniform)
        Upper().run(mw, Min(2), 2)
        assert mw.stats.total_sorted == 0

    def test_skewed_data(self):
        data = zipf_skewed(150, 3, skew=2.0, seed=4)
        mw = probe_only(data)
        result = Upper().run(mw, Min(3), 4)
        assert_valid_topk(result, data, Min(3), 4)
