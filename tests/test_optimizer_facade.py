"""Tests for the NCOptimizer facade and the SRGPlan record."""

import pytest

from repro.data.generators import uniform
from repro.optimizer.optimizer import NCOptimizer
from repro.optimizer.plan import SRGPlan
from repro.optimizer.sampling import dummy_uniform_sample, sample_from_dataset
from repro.optimizer.schedule import ScheduleOptimizer
from repro.optimizer.search import NaiveGrid, Strategies
from repro.scoring.functions import Avg, Min
from repro.sources.cost import CostModel


class TestSRGPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            SRGPlan(depths=(1.5, 0.5), schedule=(0, 1))
        with pytest.raises(ValueError):
            SRGPlan(depths=(0.5, 0.5), schedule=(0, 0))

    def test_describe(self):
        plan = SRGPlan(depths=(0.5, 1.0), schedule=(1, 0), estimated_cost=42.0)
        text = plan.describe()
        assert "0.50" in text and "p1,p0" in text and "42.0" in text

    def test_m(self):
        assert SRGPlan(depths=(0.1, 0.2, 0.3), schedule=(0, 1, 2)).m == 3


class TestNCOptimizerPlan:
    def test_plan_fields_populated(self):
        sample = dummy_uniform_sample(2, 60, seed=1)
        plan = NCOptimizer(scheme=NaiveGrid(4)).plan(
            sample, Min(2), 5, 600, CostModel.uniform(2)
        )
        assert plan.m == 2
        assert plan.estimated_cost is not None and plan.estimated_cost > 0
        assert plan.estimator_runs > 0
        assert plan.notes["scheme"] == "Naive(grid=4)"
        assert plan.notes["sample_size"] == 60

    def test_schedule_threaded_through(self):
        # With heuristic H-optimization, the plan's schedule is the
        # benefit/cost ranking of the sample.
        from repro.optimizer.schedule import benefit_cost_schedule

        data = uniform(500, 2, seed=3)
        sample = sample_from_dataset(data, 100, seed=4)
        model = CostModel.per_predicate(cs=[1, 1], cr=[5.0, 1.0])
        plan = NCOptimizer(scheme=Strategies()).plan(
            sample, Min(2), 5, 500, model
        )
        assert plan.schedule == benefit_cost_schedule(sample, model)

    def test_exhaustive_schedule_mode(self):
        sample = dummy_uniform_sample(2, 50, seed=2)
        optimizer = NCOptimizer(
            scheme=NaiveGrid(3),
            schedule_optimizer=ScheduleOptimizer(mode="exhaustive"),
        )
        plan = optimizer.plan(sample, Min(2), 3, 500, CostModel.uniform(2))
        assert sorted(plan.schedule) == [0, 1]

    def test_default_scheme_is_hclimb(self):
        assert NCOptimizer().scheme.describe().startswith("HClimb")

    def test_plans_differ_across_cost_scenarios(self):
        """Cost-based optimization must react to the cost scenario: free
        probes pull a depth up to 1.0 (probe instead of descend), while
        expensive probes keep every depth strictly below 1.0."""
        sample = dummy_uniform_sample(2, 100, seed=5)
        optimizer = NCOptimizer(scheme=NaiveGrid(5))
        plan_free_ra = optimizer.plan(
            sample, Min(2), 5, 1000, CostModel.uniform(2, cs=1.0, cr=0.0)
        )
        plan_dear_ra = optimizer.plan(
            sample, Min(2), 5, 1000, CostModel.expensive_random(2, ratio=10.0)
        )
        assert max(plan_free_ra.depths) == 1.0
        assert max(plan_dear_ra.depths) < 1.0

    def test_plans_differ_across_scoring_functions(self):
        """Example 11 on real runs: under S1/S2 data NC's optimized plan
        saves big over TA for min but only marginally for avg."""
        from repro.algorithms.nc import NC
        from repro.algorithms.ta import TA
        from repro.sources.middleware import Middleware

        data = uniform(1000, 2, seed=42)

        def ratio(fn):
            mw_ta = Middleware.over(data, CostModel.uniform(2))
            TA().run(mw_ta, fn, 10)
            mw_nc = Middleware.over(data, CostModel.uniform(2))
            NC(
                sample_size=150, optimizer=NCOptimizer(scheme=NaiveGrid(6))
            ).run(mw_nc, fn, 10)
            return mw_nc.stats.total_cost() / mw_ta.stats.total_cost()

        ratio_min, ratio_avg = ratio(Min(2)), ratio(Avg(2))
        assert ratio_min < 0.8, "min: NC should save substantially over TA"
        assert ratio_avg < 1.05, "avg: NC should at least match TA"
        assert ratio_min < ratio_avg, "savings larger in the asymmetric case"
