"""Tests for the latency models used by the parallel experiments."""

import pytest

from repro.sources.cost import CostModel
from repro.sources.latency import ConstantLatency, NoisyLatency
from repro.types import Access


class TestConstantLatency:
    def test_equals_unit_cost(self):
        model = CostModel((1.0, 2.0), (5.0, 10.0))
        latency = ConstantLatency(model)
        assert latency.duration(Access.sorted(1)) == 2.0
        assert latency.duration(Access.random(0, 3)) == 5.0

    def test_sequential_elapsed_equals_total_cost(self):
        # The paper's remark: with sequential execution, elapsed time and
        # Eq. 1 total cost coincide under unit-cost latencies.
        model = CostModel.uniform(2, cs=1.0, cr=4.0)
        latency = ConstantLatency(model)
        accesses = [Access.sorted(0), Access.sorted(1), Access.random(0, 1)]
        elapsed = sum(latency.duration(acc) for acc in accesses)
        total = sum(model.access_cost(acc) for acc in accesses)
        assert elapsed == total


class TestNoisyLatency:
    def test_deterministic_per_seed(self):
        model = CostModel.uniform(1)
        a = NoisyLatency(model, sigma=0.5, seed=3)
        b = NoisyLatency(model, sigma=0.5, seed=3)
        accs = [Access.sorted(0)] * 5
        assert [a.duration(x) for x in accs] == [b.duration(x) for x in accs]

    def test_jitter_bounded(self):
        model = CostModel.uniform(1, cs=2.0)
        noisy = NoisyLatency(model, sigma=2.0, seed=1)
        for _ in range(200):
            d = noisy.duration(Access.sorted(0))
            assert 0.4 <= d <= 10.0  # base 2.0 x clip [0.2, 5]

    def test_zero_sigma_is_constant(self):
        model = CostModel.uniform(1, cs=3.0)
        noisy = NoisyLatency(model, sigma=0.0, seed=1)
        assert noisy.duration(Access.sorted(0)) == pytest.approx(3.0)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            NoisyLatency(CostModel.uniform(1), sigma=-0.1)
