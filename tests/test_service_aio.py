"""The asyncio serving layer: concurrency, admission, TCP transport.

Everything runs through ``asyncio.run`` -- no pytest-asyncio dependency.
"""

import asyncio
import json

import pytest

from repro.data.generators import uniform
from repro.exceptions import ServiceOverloadError
from repro.obs.trace import TraceRecorder
from repro.serialization import result_to_dict
from repro.service import (
    AsyncQueryServer,
    QueryServer,
    ServerConfig,
    serve_tcp,
)
from repro.sources.cost import CostModel

MIN_Q = "SELECT * FROM r ORDER BY min(a, b) STOP AFTER 5"
AVG_Q = "SELECT * FROM r ORDER BY avg(a, b) STOP AFTER 5"
MIN3_Q = "SELECT * FROM r ORDER BY min(a, b) STOP AFTER 3"
BATCH = [MIN_Q, AVG_Q, MIN3_Q, MIN_Q]


def make_server(server_cls=AsyncQueryServer, *, trace=False, **config_kwargs):
    data = uniform(300, 2, seed=3)
    model = CostModel.uniform(2, cs=1.0, cr=2.0)
    return server_cls(
        model,
        dataset=data,
        schema=["a", "b"],
        config=ServerConfig(**config_kwargs),
        trace=TraceRecorder() if trace else None,
    )


def run_batch(server, queries=BATCH):
    """Submit everything up front, then retrieve in submission order."""

    async def main():
        ids = [await server.submit_async(q) for q in queries]
        return [await server.wait(i) for i in ids]

    return asyncio.run(main())


def assert_reconciles(server, sessions):
    """The docs/OBSERVABILITY.md reconciliation, async edition."""
    snap = server.stats()
    metrics = server.metrics
    charged = [s for s in sessions if s is not None]

    assert metrics.total("repro_accesses_total") == snap[
        "charged_accesses_total"
    ]
    assert metrics.total("repro_accesses_total") == sum(
        s.charged_accesses for s in charged
    )
    assert metrics.total("repro_access_cost_total") == pytest.approx(
        snap["charged_cost_total"]
    )
    assert metrics.total("repro_access_cost_total") == pytest.approx(
        sum(s.charged_cost for s in charged)
    )
    cached_total = metrics.total("repro_cached_accesses_total")
    assert cached_total == sum(s.cache_hits for s in charged)
    assert cached_total == snap["cache"]["hits"]
    assert metrics.total("repro_sessions_total") == len(charged)
    assert metrics.gauge_value("repro_server_clock") == snap[
        "charged_accesses_total"
    ]
    assert snap["metrics"] == metrics.snapshot()


class TestSequentialShadow:
    """concurrent_queries == 1 IS the sync server, byte for byte."""

    def test_results_and_trace_identical_to_sync_server(self):
        sync = make_server(QueryServer, trace=True)
        sync_sessions = [sync.query(q) for q in BATCH]

        aio = make_server(trace=True, concurrent_queries=1)
        aio_sessions = run_batch(aio)

        for s_sync, s_aio in zip(sync_sessions, aio_sessions):
            assert s_aio.id == s_sync.id
            assert s_aio.status == "done"
            assert result_to_dict(s_aio.result) == result_to_dict(
                s_sync.result
            )
            assert s_aio.charged_cost == s_sync.charged_cost
            assert s_aio.cache_hits == s_sync.cache_hits
        # The full observable event stream matches, not just the answers.
        assert aio.trace.to_jsonl() == sync.trace.to_jsonl()
        assert aio.stats()["charged_cost_total"] == sync.stats()[
            "charged_cost_total"
        ]

    def test_query_async_convenience(self):
        server = make_server()

        async def main():
            return await server.query_async(MIN_Q)

        session = asyncio.run(main())
        assert session.status == "done"
        assert len(session.result.ranking) == 5


class TestConcurrentInvariance:
    """At N in flight, total charged cost and every answer are unchanged."""

    def _totals(self, sessions):
        return sum(s.charged_cost for s in sessions)

    def _rankings(self, sessions):
        return [
            [(e.obj, e.score) for e in s.result.ranking] for s in sessions
        ]

    def test_charged_total_and_answers_invariant(self):
        base = make_server(QueryServer)
        base_sessions = [base.query(q) for q in BATCH]

        conc = make_server(concurrent_queries=4)
        conc_sessions = run_batch(conc)

        # Per-session attribution may shift (the cache serves whoever
        # arrives first) but the union of charged accesses cannot.
        assert self._totals(conc_sessions) == pytest.approx(
            self._totals(base_sessions)
        )
        assert conc.stats()["charged_accesses_total"] == base.stats()[
            "charged_accesses_total"
        ]
        assert self._rankings(conc_sessions) == self._rankings(base_sessions)

    def test_concurrent_run_is_repeatable(self):
        """Same submissions, same interleaving: scale-0 pacing is
        deterministic, so even per-session attribution reproduces."""
        first = run_batch(make_server(concurrent_queries=4))
        second = run_batch(make_server(concurrent_queries=4))
        assert [s.charged_cost for s in first] == [
            s.charged_cost for s in second
        ]
        assert [s.cache_hits for s in first] == [s.cache_hits for s in second]
        assert self._rankings(first) == self._rankings(second)

    def test_reconciliation_holds_under_concurrency(self):
        server = make_server(concurrent_queries=3)
        sessions = run_batch(server)
        assert_reconciles(server, sessions)


class TestAdmission:
    def test_max_pending_backpressure(self):
        server = make_server(concurrent_queries=1, max_pending=1)

        async def main():
            a = await server.submit_async(MIN_Q)
            # No yield yet: the first session is still pending, so the
            # bounded queue rejects the second before any work happens.
            with pytest.raises(ServiceOverloadError):
                await server.submit_async(AVG_Q)
            return await server.wait(a)

        session = asyncio.run(main())
        assert session.status == "done"
        assert server.metrics.counter_value(
            "repro_overload_rejections_total", scope="server",
            limit="max_pending",
        ) == 1

    def test_max_in_flight_counts_unretrieved_sessions(self):
        server = make_server(concurrent_queries=2, max_in_flight=2)

        async def main():
            a = await server.submit_async(MIN_Q)
            b = await server.submit_async(AVG_Q)
            with pytest.raises(ServiceOverloadError):
                await server.submit_async(MIN3_Q)
            await server.wait(a)
            await server.wait(b)
            # Slots free after retrieval; admission recovers.
            return await server.query_async(MIN3_Q)

        assert asyncio.run(main()).status == "done"

    def test_drain_finishes_inflight_and_rejects_new(self):
        server = make_server(concurrent_queries=2)

        async def main():
            ids = [await server.submit_async(q) for q in BATCH[:3]]
            drained = await server.drain()
            assert server.draining
            with pytest.raises(ServiceOverloadError):
                await server.submit_async(MIN_Q)
            return drained, [await server.wait(i) for i in ids]

        drained, sessions = asyncio.run(main())
        assert drained == 3
        assert all(s.status == "done" for s in sessions)
        assert server.metrics.counter_value(
            "repro_overload_rejections_total", scope="server",
            limit="draining",
        ) == 1


class TestCancellation:
    def test_cancel_mid_flight_reconciles_partial_charges(self):
        server = make_server(concurrent_queries=2)

        async def main():
            victim = await server.submit_async(MIN_Q)
            # Let it charge a few accesses, then kill it mid-flight.
            for _ in range(40):
                await asyncio.sleep(0)
            cancelled = await server.cancel(victim)
            survivor = await server.query_async(AVG_Q)
            return cancelled, survivor

        cancelled, survivor = asyncio.run(main())
        assert cancelled.status == "cancelled"
        assert cancelled.charged_cost > 0
        assert survivor.status == "done"
        # The cancelled session's charges fold into the shared ledger
        # exactly like a completed one's: the reconciliation holds with
        # the corpse included.
        assert_reconciles(server, [cancelled, survivor])
        assert server.metrics.counter_value(
            "repro_sessions_total", status="cancelled"
        ) == 1
        # Its admission slot is released.
        assert server.open_sessions == 0

    def test_cancel_before_start_charges_nothing(self):
        server = make_server(concurrent_queries=1)

        async def main():
            a = await server.submit_async(MIN_Q)
            b = await server.submit_async(AVG_Q)  # queued behind a
            cancelled = await server.cancel(b)
            done = await server.wait(a)
            return cancelled, done

        cancelled, done = asyncio.run(main())
        assert cancelled.status == "cancelled"
        assert cancelled.charged_cost == 0.0
        assert cancelled.charged_accesses == 0
        assert done.status == "done"
        assert_reconciles(server, [cancelled, done])

    def test_cancel_leaves_no_orphaned_cache_generations(self):
        """A cancel during a TTL'd cache's pinned window must not leak
        the pin or skip the deferred sweep."""
        server = make_server(
            concurrent_queries=2, cache_ttl=1, cache_max_entries=64
        )

        async def main():
            victim = await server.submit_async(MIN_Q)
            for _ in range(40):
                await asyncio.sleep(0)
            await server.cancel(victim)
            return await server.query_async(AVG_Q)

        survivor = asyncio.run(main())
        assert survivor.status == "done"
        assert not server.cache.pinned  # every retain() was released
        # The deferred sweep ran: ttl=1 means entries from closed
        # generations are gone once no session pins the cache.
        assert server.cache.entry_count <= 64

    def test_cancel_already_done_session_just_retrieves(self):
        server = make_server()

        async def main():
            sid = await server.submit_async(MIN_Q)
            await server.wait(sid)
            return await server.cancel(sid)

        session = asyncio.run(main())
        assert session.status == "done"
        assert session.result is not None


class _TcpClient:
    """A minimal JSON-lines client for the tests."""

    def __init__(self, host, port):
        self.host, self.port = host, port
        self.reader = None
        self.writer = None

    async def __aenter__(self):
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def __aexit__(self, *exc):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def send(self, **request):
        self.writer.write((json.dumps(request) + "\n").encode("utf-8"))
        await self.writer.drain()

    async def recv(self):
        line = await self.reader.readline()
        assert line, "server closed the connection unexpectedly"
        return json.loads(line)

    async def call(self, **request):
        await self.send(**request)
        return await self.recv()


class TestTcpTransport:
    def _serve(self, coro_fn, **config_kwargs):
        """Start a TCP service on an ephemeral port, run the scenario."""

        async def main():
            server = make_server(**config_kwargs)
            service = await serve_tcp(server, "127.0.0.1", 0)
            host, port = service.host, service.port
            try:
                return await coro_fn(server, host, port)
            finally:
                await service.aclose()

        return asyncio.run(main())

    def test_three_concurrent_clients_match_sync_answers(self):
        sync = make_server(QueryServer)
        expected = {
            q: [(e.obj, e.score) for e in sync.query(q).result.ranking]
            for q in (MIN_Q, AVG_Q, MIN3_Q)
        }
        sync_total = sync.stats()["charged_cost_total"]

        async def scenario(server, host, port):
            async def one(query):
                async with _TcpClient(host, port) as client:
                    return query, await client.call(op="query", query=query)

            results = await asyncio.gather(
                one(MIN_Q), one(AVG_Q), one(MIN3_Q)
            )
            return results, server.stats()

        results, stats = self._serve(scenario, concurrent_queries=3)
        for query, response in results:
            assert response["ok"], response
            ranking = [
                (e["obj"], e["score"])
                for e in response["result"]["ranking"]
            ]
            assert ranking == expected[query]
        # Union argument over the wire: concurrent clients pay exactly
        # what the sequential server pays for the same batch.
        assert stats["charged_cost_total"] == pytest.approx(sync_total)

    def test_stream_op_sends_progress_then_result(self):
        async def scenario(server, host, port):
            async with _TcpClient(host, port) as client:
                await client.send(op="stream", query=MIN3_Q)
                lines = []
                while True:
                    response = await client.recv()
                    lines.append(response)
                    if response.get("op") != "progress":
                        break
                return lines

        lines = self._serve(scenario)
        progress, final = lines[:-1], lines[-1]
        assert [p["rank"] for p in progress] == [1, 2, 3]
        assert final["ok"] and final["op"] == "result"
        # Progressive answers are the final ranking, streamed early.
        assert [(p["object"], p["score"]) for p in progress] == [
            (e["obj"], e["score"]) for e in final["result"]["ranking"]
        ]

    def test_submit_result_cancel_stats_ops(self):
        async def scenario(server, host, port):
            async with _TcpClient(host, port) as client:
                submitted = await client.call(op="submit", query=MIN_Q)
                assert submitted["ok"]
                cancel = await client.call(
                    op="cancel", session=submitted["session"]
                )
                stats = await client.call(op="stats")
                return cancel, stats

        cancel, stats = self._serve(scenario)
        assert cancel["ok"] and cancel["status"] in ("cancelled", "done")
        assert stats["ok"]
        assert stats["stats"]["draining"] is False

    def test_client_disconnect_cancels_owned_sessions(self):
        async def scenario(server, host, port):
            client = _TcpClient(host, port)
            await client.__aenter__()
            submitted = await client.call(op="submit", query=MIN_Q)
            sid = submitted["session"]
            # Vanish without retrieving.
            await client.__aexit__()
            # Give the handler's cleanup a chance to run.
            for _ in range(50):
                await asyncio.sleep(0)
                if server.open_sessions == 0:
                    break
            return sid, server.session(sid)

        sid, session = self._serve(scenario)
        assert session.retrieved
        assert session.status in ("cancelled", "done")
        assert session.charged_cost >= 0.0

    def test_per_client_session_cap(self):
        async def scenario(server, host, port):
            async with _TcpClient(host, port) as client:
                first = await client.call(op="submit", query=MIN_Q)
                second = await client.call(op="submit", query=AVG_Q)
                # Retrieving the first frees the client's slot.
                await client.call(op="result", session=first["session"])
                third = await client.call(op="submit", query=AVG_Q)
                await client.call(op="result", session=third["session"])
                return first, second, third

        first, second, third = self._serve(scenario, client_max_open=1)
        assert first["ok"] and third["ok"]
        assert not second["ok"]
        assert second["type"] == "ServiceOverloadError"

    def test_malformed_lines_get_error_responses(self):
        async def scenario(server, host, port):
            async with _TcpClient(host, port) as client:
                client.writer.write(b"this is not json\n")
                await client.writer.drain()
                bad_json = await client.recv()
                bad_op = await client.call(op="frobnicate")
                no_query = await client.call(op="query")
                return bad_json, bad_op, no_query

        bad_json, bad_op, no_query = self._serve(scenario)
        assert not bad_json["ok"] and bad_json["type"] == "ProtocolError"
        assert not bad_op["ok"]
        assert not no_query["ok"]

    def test_shutdown_op_stops_the_service(self):
        async def main():
            server = make_server()
            service = await serve_tcp(server, "127.0.0.1", 0)
            serve_task = asyncio.create_task(service.serve_forever())
            async with _TcpClient(service.host, service.port) as client:
                result = await client.call(op="query", query=MIN3_Q)
                assert result["ok"]
                ack = await client.call(op="shutdown")
                assert ack["ok"]
            await asyncio.wait_for(serve_task, timeout=5)
            return server

        server = asyncio.run(main())
        assert server.draining  # aclose() drains on the way out
