"""Seeded chaos fuzz: transient faults must never change any answer.

The central guarantee of docs/FAULTS.md: transient-only faults plus a
sufficient retry budget are *invisible* in the answer. For every
algorithm in the library, a chaos run over flaky sources must return the
same top-k -- object ids AND scores -- as the fault-free run on the same
data, differing only in cost (retries are charged) and fault accounting.
Injection, jitter, and data are all seeded, so each case replays exactly.

Every chaos run here is armed with the runtime contract checker
(``contracts=True``, docs/LINTS.md): fault handling must preserve the
paper's soundness invariants (non-increasing bounds and thresholds,
scores in [0, 1]), not just the final answer.
"""

import itertools

import pytest

from repro.algorithms import (
    CA,
    FA,
    NRA,
    MPro,
    QuickCombine,
    SRCombine,
    StreamCombine,
    TA,
    Upper,
)
from repro.bench.harness import nc_with_dummy_planner
from repro.data.generators import uniform, zipf_skewed
from repro.faults import FaultProfile, RetryPolicy, chaos_middleware
from repro.scoring.functions import Avg, Min
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware

ALGORITHMS = {
    "NC": lambda: nc_with_dummy_planner(sample_size=80),
    "TA": TA,
    "FA": FA,
    "CA": CA,
    "NRA": NRA,
    "MPro": MPro,
    "Upper": Upper,
    "QuickCombine": QuickCombine,
    "StreamCombine": StreamCombine,
    "SRCombine": SRCombine,
}

RETRIES = RetryPolicy(max_attempts=8)

# MPro probes objects directly and needs an enumerable object universe.
NEEDS_UNIVERSE = {"MPro"}


def datasets():
    return [
        ("uniform", uniform(80, 2, seed=21), Min(2)),
        ("zipf", zipf_skewed(80, 2, seed=22), Avg(2)),
    ]


@pytest.mark.parametrize("algo_name", sorted(ALGORITHMS))
@pytest.mark.parametrize("fault_seed", [1, 2, 3])
def test_transient_chaos_is_answer_invisible(algo_name, fault_seed):
    wild = algo_name in NEEDS_UNIVERSE
    for label, data, fn in datasets():
        costs = CostModel.uniform(data.m, cs=1.0, cr=3.0)
        clean = ALGORITHMS[algo_name]().run(
            Middleware.over(data, costs, no_wild_guesses=not wild), fn, 5
        )
        chaos_mw = chaos_middleware(
            data,
            costs,
            FaultProfile.transient(0.1),
            seed=fault_seed,
            retry_policy=RETRIES,
            no_wild_guesses=not wild,
            contracts=True,
        )
        chaos = ALGORITHMS[algo_name]().run(chaos_mw, fn, 5)
        context = (algo_name, label, fault_seed)
        assert chaos_mw.contracts is not None
        assert chaos_mw.contracts.checks > 0, context
        assert chaos.objects == clean.objects, context
        assert chaos.scores == clean.scores, context
        assert chaos.is_exact and not chaos.partial, context
        # Retries showed up in the accounting (at 10% over dozens of
        # accesses at least one attempt fails for every seed used here).
        assert chaos_mw.stats.total_retries > 0, context
        assert chaos.total_cost() >= clean.total_cost(), context


def test_mixed_timeouts_and_transients_also_invisible():
    data = uniform(60, 3, seed=30)
    costs = CostModel.uniform(3, cs=1.0, cr=2.0)
    fn = Min(3)
    clean = TA().run(Middleware.over(data, costs), fn, 4)
    for rate_t, rate_to in itertools.product([0.05, 0.15], repeat=2):
        mw = chaos_middleware(
            data,
            costs,
            FaultProfile(transient_rate=rate_t, timeout_rate=rate_to),
            seed=17,
            retry_policy=RETRIES,
            contracts=True,
        )
        chaos = TA().run(mw, fn, 4)
        assert chaos.objects == clean.objects
        assert chaos.scores == clean.scores


def test_chaos_run_replays_exactly():
    data = uniform(70, 2, seed=5)
    costs = CostModel.uniform(2)

    def run():
        mw = chaos_middleware(
            data,
            costs,
            FaultProfile.transient(0.2),
            seed=9,
            retry_policy=RETRIES,
            contracts=True,
        )
        result = NRA().run(mw, Min(2), 5)
        return result.objects, result.scores, result.total_cost(), (
            mw.stats.total_retries,
            mw.contracts.checks,
        )

    assert run() == run()
