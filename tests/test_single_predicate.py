"""Edge-case suite: single-predicate queries (m = 1).

With one predicate, a top-k query degenerates to a sorted prefix: the
optimal plan is exactly ``k`` sorted accesses (plus nothing). Every layer
must handle the degenerate case cleanly -- a common source of
off-by-one/empty-loop bugs.
"""

import pytest

from repro.algorithms.mpro import MPro
from repro.algorithms.nra import NRA
from repro.algorithms.ta import TA
from repro.core.framework import FrameworkNC
from repro.core.policies import SRGPolicy
from repro.data.dataset import Dataset
from repro.data.generators import uniform
from repro.optimizer.optimizer import NCOptimizer
from repro.optimizer.sampling import dummy_uniform_sample
from repro.optimizer.search import NaiveGrid
from repro.scoring.functions import Avg, Min
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware
from tests.conftest import assert_valid_topk, mw_over


@pytest.fixture
def data():
    return uniform(100, 1, seed=81)


class TestEngineM1:
    def test_nc_costs_exactly_k_sorted_accesses(self, data):
        mw = mw_over(data)
        result = FrameworkNC(mw, Min(1), 7, SRGPolicy([0.0])).run()
        assert_valid_topk(result, data, Min(1), 7)
        assert mw.stats.total_sorted == 7
        assert mw.stats.total_random == 0

    def test_probe_only_plan_still_correct(self, data):
        # delta = 1.0 wants probes, but probing needs discovery first; the
        # completeness fallback must keep things moving.
        mw = mw_over(data)
        result = FrameworkNC(mw, Avg(1), 3, SRGPolicy([1.0])).run()
        assert_valid_topk(result, data, Avg(1), 3)

    def test_identity_function(self, data):
        # With m=1 every monotone aggregate is the identity: the query is
        # simply "the k largest scores".
        mw = mw_over(data)
        result = FrameworkNC(mw, Min(1), 5, SRGPolicy([0.5])).run()
        top_scores = sorted(data.column(0), reverse=True)[:5]
        assert result.scores == pytest.approx(top_scores)


class TestBaselinesM1:
    def test_ta(self, data):
        mw = mw_over(data)
        result = TA().run(mw, Min(1), 4)
        assert_valid_topk(result, data, Min(1), 4)

    def test_nra(self, data):
        mw = Middleware.over(data, CostModel.no_random(1))
        result = NRA().run(mw, Min(1), 4)
        assert_valid_topk(result, data, Min(1), 4)
        assert mw.stats.total_sorted == 4  # prefix exactly

    def test_mpro(self, data):
        mw = Middleware.over(data, CostModel.no_sorted(1), no_wild_guesses=False)
        result = MPro().run(mw, Min(1), 4)
        assert_valid_topk(result, data, Min(1), 4)


class TestOptimizerM1:
    def test_plan_search_handles_one_dimension(self, data):
        plan = NCOptimizer(scheme=NaiveGrid(5)).plan(
            dummy_uniform_sample(1, 60, seed=1),
            Min(1),
            5,
            data.n,
            CostModel.uniform(1),
        )
        assert plan.m == 1
        mw = mw_over(data)
        result = FrameworkNC(
            mw, Min(1), 5, SRGPolicy(plan.depths, plan.schedule)
        ).run()
        assert_valid_topk(result, data, Min(1), 5)
        # Nothing beats the k-prefix plan in this degenerate case.
        assert mw.stats.total_cost() == 5.0


class TestTiesM1:
    def test_all_equal_scores(self):
        data = Dataset([[0.5]] * 8)
        mw = mw_over(data)
        result = FrameworkNC(mw, Min(1), 3, SRGPolicy([0.0])).run()
        assert result.objects == [7, 6, 5]  # higher oid wins ties
        assert result.scores == [0.5] * 3
