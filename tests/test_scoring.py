"""Tests for the scoring functions and the monotonicity checker."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import NotMonotoneError
from repro.scoring import (
    Avg,
    Geometric,
    Max,
    Median,
    Min,
    Monotone,
    Product,
    WeightedSum,
    check_monotone,
)

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestMin:
    def test_basic(self):
        assert Min(3)([0.5, 0.2, 0.9]) == 0.2

    def test_arity_enforced(self):
        with pytest.raises(ValueError):
            Min(2)([0.1, 0.2, 0.3])

    def test_partial_derivative_on_argmin(self):
        fn = Min(2)
        assert fn.partial_derivative(0, [0.2, 0.8]) == 1.0
        assert fn.partial_derivative(1, [0.2, 0.8]) == 0.0

    def test_name(self):
        assert str(Min(2)) == "min[2]"


class TestMax:
    def test_basic(self):
        assert Max(3)([0.5, 0.2, 0.9]) == 0.9

    def test_partial_derivative_on_argmax(self):
        fn = Max(2)
        assert fn.partial_derivative(1, [0.2, 0.8]) == 1.0
        assert fn.partial_derivative(0, [0.2, 0.8]) == 0.0


class TestAvg:
    def test_basic(self):
        assert Avg(4)([0.0, 1.0, 0.5, 0.5]) == pytest.approx(0.5)

    def test_derivative_uniform(self):
        assert Avg(4).partial_derivative(2, [0.1] * 4) == pytest.approx(0.25)


class TestWeightedSum:
    def test_normalizes_weights(self):
        fn = WeightedSum([2.0, 2.0])
        assert fn.weights == (0.5, 0.5)
        assert fn([1.0, 0.0]) == pytest.approx(0.5)

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            WeightedSum([1.0, -0.5])

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            WeightedSum([0.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            WeightedSum([])

    def test_derivative_is_weight(self):
        fn = WeightedSum([3.0, 1.0])
        assert fn.partial_derivative(0, [0.5, 0.5]) == pytest.approx(0.75)

    @given(st.lists(unit, min_size=2, max_size=2))
    def test_stays_in_unit_interval(self, scores):
        assert 0.0 <= WeightedSum([0.3, 0.7])(scores) <= 1.0


class TestProduct:
    def test_basic(self):
        assert Product(3)([0.5, 0.5, 0.5]) == pytest.approx(0.125)

    def test_derivative_excludes_own_coordinate(self):
        fn = Product(3)
        assert fn.partial_derivative(0, [0.9, 0.5, 0.4]) == pytest.approx(0.2)


class TestGeometric:
    def test_equals_inputs_when_identical(self):
        assert Geometric(3)([0.4, 0.4, 0.4]) == pytest.approx(0.4)

    def test_zero_annihilates(self):
        assert Geometric(2)([0.0, 1.0]) == 0.0


class TestMedian:
    def test_odd_arity(self):
        assert Median(3)([0.9, 0.1, 0.5]) == 0.5

    def test_even_arity_lower_median(self):
        assert Median(4)([0.1, 0.2, 0.8, 0.9]) == 0.2


class TestMonotoneWrapper:
    def test_wraps_callable(self):
        fn = Monotone(lambda xs: xs[0] * 0.5 + xs[1] * 0.5, arity=2, name="mix")
        assert fn([1.0, 0.0]) == 0.5
        assert str(fn) == "mix"

    def test_arity_lower_bound(self):
        with pytest.raises(ValueError):
            Monotone(lambda xs: 0.0, arity=0)


class TestNumericDerivativeFallback:
    def test_matches_closed_form_for_smooth_fn(self):
        smooth = Monotone(lambda xs: 0.3 * xs[0] + 0.7 * xs[1], arity=2)
        closed = WeightedSum([0.3, 0.7])
        for i in range(2):
            assert smooth.partial_derivative(i, [0.4, 0.6]) == pytest.approx(
                closed.partial_derivative(i, [0.4, 0.6]), abs=1e-4
            )

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            Avg(2).partial_derivative(2, [0.1, 0.2])

    def test_at_cube_boundary(self):
        # One-sided clipping must still return a finite value at 0 and 1.
        fn = Avg(2)
        assert math.isfinite(fn.partial_derivative(0, [0.0, 1.0]))
        assert math.isfinite(fn.partial_derivative(1, [0.0, 1.0]))


class TestCheckMonotone:
    @pytest.mark.parametrize(
        "fn",
        [Min(3), Max(3), Avg(3), WeightedSum([1, 2, 3]), Product(3), Geometric(3), Median(3)],
        ids=lambda fn: fn.name,
    )
    def test_standard_functions_pass(self, fn):
        assert check_monotone(fn) is None

    def test_detects_violation(self):
        bad = Monotone(lambda xs: 1.0 - xs[0], arity=1, name="negated")
        with pytest.raises(NotMonotoneError):
            check_monotone(bad)

    def test_returns_witness_when_not_raising(self):
        bad = Monotone(lambda xs: 1.0 - xs[0], arity=1, name="negated")
        witness = check_monotone(bad, raise_on_failure=False)
        assert witness is not None
        lo, hi = witness
        assert bad(list(lo)) > bad(list(hi))


class TestMonotonicityProperty:
    @given(
        st.lists(unit, min_size=3, max_size=3),
        st.lists(unit, min_size=3, max_size=3),
    )
    def test_all_aggregates_monotone(self, a, b):
        lo = [min(x, y) for x, y in zip(a, b)]
        hi = [max(x, y) for x, y in zip(a, b)]
        for fn in (Min(3), Max(3), Avg(3), Product(3), Median(3)):
            assert fn(lo) <= fn(hi) + 1e-12
