"""Scale smoke tests: the engine stays sublinear-feeling at larger n.

These are guardrails against accidental O(n) work per access (e.g. eager
heap rekeying); generous wall-time budgets keep them robust on slow CI.
"""

import time

import pytest

from repro.algorithms.ta import TA
from repro.core.framework import FrameworkNC
from repro.core.policies import SRGPolicy
from repro.data.generators import uniform
from repro.scoring.functions import Avg, Min
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware
from tests.conftest import mw_over


class TestEngineScale:
    def test_50k_objects_under_wall_budget(self):
        data = uniform(50_000, 2, seed=91)
        mw = mw_over(data)
        start = time.perf_counter()  # repro-lint: ignore[RL002] -- wall-budget test
        result = FrameworkNC(mw, Min(2), 10, SRGPolicy([0.8, 0.8])).run()
        elapsed = time.perf_counter() - start  # repro-lint: ignore[RL002]
        assert elapsed < 20.0, f"engine took {elapsed:.1f}s at n=50k"
        assert len(result.ranking) == 10
        # Pruning: the engine must touch a small fraction of the data.
        assert mw.stats.total_accesses < data.n // 5

    def test_access_count_grows_sublinearly(self):
        def accesses(n):
            data = uniform(n, 2, seed=92)
            mw = mw_over(data)
            FrameworkNC(mw, Avg(2), 10, SRGPolicy([0.8, 0.8])).run()
            return mw.stats.total_accesses

        small, large = accesses(2_000), accesses(32_000)
        assert large < small * 16 / 2, (
            f"16x data cost {large / small:.1f}x accesses; expected clearly "
            "sublinear growth"
        )

    def test_wide_query_m6(self):
        data = uniform(2_000, 6, seed=93)
        mw = Middleware.over(data, CostModel.uniform(6))
        result = FrameworkNC(
            mw, Min(6), 5, SRGPolicy([0.7] * 6)
        ).run()
        oracle = data.topk(Min(6), 5)
        assert result.objects == [entry.obj for entry in oracle]

    def test_large_k(self):
        data = uniform(5_000, 2, seed=94)
        mw = mw_over(data)
        result = FrameworkNC(mw, Min(2), 500, SRGPolicy([0.5, 0.5])).run()
        oracle = data.topk(Min(2), 500)
        assert result.objects == [entry.obj for entry in oracle]

    def test_ta_scale_smoke(self):
        data = uniform(30_000, 2, seed=95)
        mw = mw_over(data)
        start = time.perf_counter()  # repro-lint: ignore[RL002] -- wall-budget test
        TA().run(mw, Min(2), 10)
        assert time.perf_counter() - start < 20.0  # repro-lint: ignore[RL002]
