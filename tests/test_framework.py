"""Tests for the NC engine (Figure 6 + Figure 10)."""

import pytest

from repro.core.framework import FrameworkNC, TraceStep
from repro.core.policies import RandomPolicy, RoundRobinPolicy, SRGPolicy
from repro.data.dataset import Dataset
from repro.data.generators import uniform
from repro.exceptions import ReproError, UnanswerableQueryError
from repro.scoring.functions import Avg, Max, Min, Product
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware
from tests.conftest import assert_valid_topk, mw_over


def run_nc(dataset, fn, k, policy=None, cost_model=None, **mw_kwargs):
    mw = mw_over(dataset, cost_model, **mw_kwargs)
    policy = policy or SRGPolicy([0.5] * dataset.m)
    engine = FrameworkNC(mw, fn, k, policy)
    return engine.run(), mw


class TestCorrectness:
    @pytest.mark.parametrize("k", [1, 3, 10])
    @pytest.mark.parametrize("fn_cls", [Min, Avg, Max, Product])
    def test_exact_topk_small_uniform(self, small_uniform, fn_cls, k):
        fn = fn_cls(2)
        result, _ = run_nc(small_uniform, fn, k)
        oracle = small_uniform.topk(fn, k)
        # NC resolves ties canonically, so ids match exactly.
        assert result.objects == [entry.obj for entry in oracle]
        assert result.scores == pytest.approx([entry.score for entry in oracle])

    def test_three_predicates(self, medium_uniform):
        fn = Min(3)
        result, _ = run_nc(medium_uniform, fn, 5, policy=SRGPolicy([0.6, 0.7, 0.8]))
        assert_valid_topk(result, medium_uniform, fn, 5)

    def test_k_equals_n(self, small_uniform):
        result, _ = run_nc(small_uniform, Avg(2), 50)
        assert len(result.ranking) == 50

    def test_k_exceeds_n_returns_all(self, ds1):
        result, _ = run_nc(ds1, Min(2), 10)
        assert len(result.ranking) == 3

    def test_single_object_database(self):
        ds = Dataset([[0.4, 0.9]])
        result, _ = run_nc(ds, Min(2), 1)
        assert result.objects == [0]
        assert result.scores == pytest.approx([0.4])

    def test_duplicate_scores_resolved_canonically(self):
        ds = Dataset([[0.5, 0.5]] * 6)
        result, _ = run_nc(ds, Avg(2), 3)
        assert result.objects == [5, 4, 3]  # higher oid wins ties

    def test_all_zero_scores(self):
        ds = Dataset([[0.0, 0.0]] * 4)
        result, _ = run_nc(ds, Min(2), 2)
        assert result.scores == [0.0, 0.0]
        assert result.objects == [3, 2]

    def test_all_one_scores(self):
        ds = Dataset([[1.0, 1.0]] * 4)
        result, _ = run_nc(ds, Min(2), 2)
        assert result.objects == [3, 2]


class TestPolicyIndependence:
    """Correctness belongs to the framework, not the policy (Section 6)."""

    @pytest.mark.parametrize(
        "policy_factory",
        [
            lambda: SRGPolicy([0.0, 0.0]),
            lambda: SRGPolicy([1.0, 1.0]),
            lambda: SRGPolicy([0.3, 0.9], schedule=[1, 0]),
            lambda: RoundRobinPolicy(),
            lambda: RandomPolicy(seed=11),
        ],
    )
    def test_any_policy_yields_exact_answer(self, small_uniform, policy_factory):
        fn = Min(2)
        result, _ = run_nc(small_uniform, fn, 4, policy=policy_factory())
        oracle = small_uniform.topk(fn, 4)
        assert result.objects == [entry.obj for entry in oracle]

    def test_policies_differ_in_cost_not_answer(self, small_uniform):
        fn = Min(2)
        focused, mw1 = run_nc(small_uniform, fn, 1, policy=SRGPolicy([0.7, 1.0]))
        parallel, mw2 = run_nc(small_uniform, fn, 1, policy=SRGPolicy([0.0, 0.0]))
        assert focused.objects == parallel.objects
        assert mw1.stats.total_cost() != mw2.stats.total_cost()


class TestCapabilityScenarios:
    def test_no_random_scenario(self, small_uniform):
        result, mw = run_nc(
            small_uniform, Min(2), 3, cost_model=CostModel.no_random(2)
        )
        assert_valid_topk(result, small_uniform, Min(2), 3)
        assert mw.stats.total_random == 0

    def test_no_sorted_scenario_with_universe(self, small_uniform):
        mw = Middleware.over(
            small_uniform, CostModel.no_sorted(2), no_wild_guesses=False
        )
        engine = FrameworkNC(mw, Min(2), 3, SRGPolicy([1.0, 1.0]))
        result = engine.run()
        assert_valid_topk(result, small_uniform, Min(2), 3)
        assert mw.stats.total_sorted == 0

    def test_no_sorted_without_universe_unanswerable(self, small_uniform):
        mw = Middleware.over(small_uniform, CostModel.no_sorted(2))
        engine = FrameworkNC(mw, Min(2), 3, SRGPolicy([1.0, 1.0]))
        with pytest.raises(UnanswerableQueryError):
            engine.run()

    def test_mixed_capabilities(self, small_uniform):
        # p0 sorted-only, p1 random-only.
        model = CostModel((1.0, float("inf")), (float("inf"), 1.0))
        result, _ = run_nc(small_uniform, Min(2), 3, cost_model=model)
        assert_valid_topk(result, small_uniform, Min(2), 3)

    def test_wild_guess_mode_with_sorted_sources(self, small_uniform):
        result, _ = run_nc(small_uniform, Avg(2), 3, no_wild_guesses=False)
        assert_valid_topk(result, small_uniform, Avg(2), 3)


class TestEngineContract:
    def test_requires_fresh_middleware(self, ds1):
        mw = mw_over(ds1)
        mw.sorted_access(0)
        with pytest.raises(ValueError):
            FrameworkNC(mw, Min(2), 1, SRGPolicy([0.5, 0.5]))

    def test_single_use(self, ds1):
        mw = mw_over(ds1)
        engine = FrameworkNC(mw, Min(2), 1, SRGPolicy([0.5, 0.5]))
        engine.run()
        with pytest.raises(ReproError):
            engine.run()

    def test_k_validated(self, ds1):
        with pytest.raises(ValueError):
            FrameworkNC(mw_over(ds1), Min(2), 0, SRGPolicy([0.5, 0.5]))

    def test_access_budget_enforced(self, small_uniform):
        mw = mw_over(small_uniform)
        engine = FrameworkNC(
            mw, Min(2), 5, SRGPolicy([0.0, 0.0]), max_accesses=3
        )
        with pytest.raises(ReproError):
            engine.run()

    def test_rogue_policy_detected(self, ds1):
        class Rogue(SRGPolicy):
            def select(self, alternatives, ctx):
                from repro.types import Access

                return Access.random(0, 999)  # never among the choices

        mw = mw_over(ds1)
        engine = FrameworkNC(mw, Min(2), 1, Rogue([0.5, 0.5]))
        with pytest.raises(ReproError):
            engine.run()


class TestObserver:
    def test_observer_sees_every_iteration(self, ds1):
        steps: list[TraceStep] = []
        mw = mw_over(ds1)
        engine = FrameworkNC(
            mw, Min(2), 1, SRGPolicy([0.75, 1.0]), observer=steps.append
        )
        engine.run()
        assert len(steps) == mw.stats.total_accesses
        assert [s.step for s in steps] == list(range(1, len(steps) + 1))
        for step in steps:
            assert step.access in step.alternatives

    def test_iterations_metadata(self, ds1):
        mw = mw_over(ds1)
        engine = FrameworkNC(mw, Min(2), 1, SRGPolicy([0.75, 1.0]))
        result = engine.run()
        assert result.metadata["iterations"] == mw.stats.total_accesses


class TestCostAccountingIntegrity:
    def test_result_cost_matches_middleware(self, small_uniform):
        result, mw = run_nc(small_uniform, Min(2), 3)
        assert result.total_cost() == mw.stats.total_cost()

    def test_log_recomputation(self, small_uniform):
        mw = mw_over(small_uniform, record_log=True)
        engine = FrameworkNC(mw, Avg(2), 3, SRGPolicy([0.5, 0.5]))
        engine.run()
        model = mw.cost_model
        recomputed = sum(model.access_cost(acc) for acc in mw.stats.log)
        assert recomputed == pytest.approx(mw.stats.total_cost())
