"""Tests for middleware access budgets."""

import pytest

from repro.core.framework import FrameworkNC
from repro.core.policies import SRGPolicy
from repro.data.generators import uniform
from repro.exceptions import BudgetExceededError
from repro.scoring.functions import Min
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware
from tests.conftest import mw_over


class TestBudgetEnforcement:
    def test_refuses_access_past_the_cap(self, ds1):
        mw = Middleware.over(ds1, CostModel.uniform(2, cs=1.0), budget=2.0)
        mw.sorted_access(0)
        mw.sorted_access(0)
        with pytest.raises(BudgetExceededError):
            mw.sorted_access(0)
        # The refused access was never performed or charged.
        assert mw.stats.total_cost() == 2.0
        assert mw.stats.total_sorted == 2

    def test_charges_by_access_cost_not_count(self, ds1):
        mw = Middleware.over(
            ds1, CostModel.uniform(2, cs=1.0, cr=10.0), budget=5.0
        )
        obj, _ = mw.sorted_access(0)
        with pytest.raises(BudgetExceededError):
            mw.random_access(1, obj)  # 1 + 10 > 5
        assert mw.stats.total_random == 0

    def test_exact_fit_allowed(self, ds1):
        mw = Middleware.over(ds1, CostModel.uniform(2, cs=1.0), budget=2.0)
        mw.sorted_access(0)
        mw.sorted_access(0)  # exactly exhausts the budget: legal
        assert mw.remaining_budget() == pytest.approx(0.0)

    def test_remaining_budget(self, ds1):
        mw = Middleware.over(ds1, CostModel.uniform(2, cs=1.0), budget=10.0)
        assert mw.remaining_budget() == 10.0
        mw.sorted_access(0)
        assert mw.remaining_budget() == 9.0

    def test_unbounded_by_default(self, ds1):
        mw = mw_over(ds1)
        assert mw.budget is None
        assert mw.remaining_budget() is None

    def test_zero_cost_accesses_always_fit(self, ds1):
        mw = Middleware.over(
            ds1, CostModel.uniform(2, cs=1.0, cr=0.0), budget=1.0
        )
        obj, _ = mw.sorted_access(0)
        mw.random_access(1, obj)  # free: fine even with budget exhausted

    def test_negative_budget_rejected(self, ds1):
        with pytest.raises(ValueError):
            Middleware.over(ds1, CostModel.uniform(2), budget=-1.0)

    def test_reset_does_not_restore_budget_config(self, ds1):
        mw = Middleware.over(ds1, CostModel.uniform(2, cs=1.0), budget=1.0)
        mw.sorted_access(0)
        mw.reset()
        # After reset the spend is back to zero against the same cap.
        assert mw.remaining_budget() == 1.0
        mw.sorted_access(0)
        with pytest.raises(BudgetExceededError):
            mw.sorted_access(1)


class TestBudgetWithEngine:
    def test_sufficient_budget_answers_normally(self):
        data = uniform(80, 2, seed=85)
        reference = mw_over(data)
        FrameworkNC(reference, Min(2), 3, SRGPolicy([0.6, 0.6])).run()
        needed = reference.stats.total_cost()

        mw = Middleware.over(data, CostModel.uniform(2), budget=needed)
        result = FrameworkNC(mw, Min(2), 3, SRGPolicy([0.6, 0.6])).run()
        oracle = data.topk(Min(2), 3)
        assert result.objects == [entry.obj for entry in oracle]

    def test_insufficient_budget_fails_loudly_with_state_intact(self):
        data = uniform(80, 2, seed=85)
        mw = Middleware.over(data, CostModel.uniform(2), budget=10.0)
        engine = FrameworkNC(mw, Min(2), 3, SRGPolicy([0.6, 0.6]))
        with pytest.raises(BudgetExceededError):
            engine.run()
        # Spending stopped at the cap and the partial state is usable.
        assert mw.stats.total_cost() <= 10.0
        assert engine.state.tracked_count() > 0

    def test_partial_answers_before_exhaustion(self):
        """Progressive consumption surfaces what the budget could prove."""
        data = uniform(120, 2, seed=86)
        mw = Middleware.over(data, CostModel.uniform(2), budget=60.0)
        engine = FrameworkNC(mw, Min(2), 10, SRGPolicy([0.6, 0.6]))
        confirmed = []
        try:
            for entry in engine.answers():
                confirmed.append(entry)
                if len(confirmed) >= 10:
                    break
        except BudgetExceededError:
            pass
        # Whatever was confirmed is exactly the true answer prefix.
        oracle = data.topk(Min(2), len(confirmed)) if confirmed else []
        assert [e.obj for e in confirmed] == [e.obj for e in oracle]
