"""Tests for mid-flight adaptive replanning (``repro.optimizer.replan``).

The drift harness used throughout: zero-fault :class:`FaultInjectingSource`
wrappers whose :class:`ConstantLatency` reports the *true* cost model as
observed durations, a middleware charging that true model, and a
:class:`CostMonitor` anchored to a *misspecified* assumed model -- the
live-observation path the serving layer uses, with reality and belief
deliberately split.
"""

import asyncio
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.framework import FrameworkNC
from repro.core.policies import SRGPolicy
from repro.data.generators import uniform
from repro.faults.injector import FaultProfile, faulty_sources_for
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceRecorder
from repro.optimizer.optimizer import NCOptimizer
from repro.optimizer.plan import SRGPlan
from repro.optimizer.replan import (
    REPLAN_MODES,
    ReplanConfig,
    ReplanController,
    plan_fingerprint,
)
from repro.optimizer.sampling import dummy_uniform_sample
from repro.runtime.engine import AsyncExecutor
from repro.scoring.functions import WeightedSum
from repro.serialization import result_to_dict
from repro.sources.cost import CostModel
from repro.sources.latency import ConstantLatency
from repro.sources.middleware import Middleware
from repro.sources.monitor import CostMonitor

N, M, K = 800, 3, 10
FN = WeightedSum([1.0] * M)
ASSUMED = CostModel.uniform(M, cs=1.0, cr=1.0)
# Reality: predicate 0's probes are 40x dearer than assumed.
TRUE = CostModel((1.0, 1.0, 1.0), (40.0, 1.0, 1.0))
DATA = uniform(N, M, seed=3)
SAMPLE = dummy_uniform_sample(M, 100, 0)
OPTIMIZER = NCOptimizer()

_plans: dict[str, SRGPlan] = {}


def misspecified_plan() -> SRGPlan:
    """The plan the optimizer picks when it believes the assumed model."""
    if "plan0" not in _plans:
        _plans["plan0"] = OPTIMIZER.plan(SAMPLE, FN, K, N, ASSUMED)
    return _plans["plan0"]


def oracle_plan() -> SRGPlan:
    """The plan the optimizer picks when handed the true model."""
    if "oracle" not in _plans:
        _plans["oracle"] = OPTIMIZER.plan(SAMPLE, FN, K, N, TRUE)
    return _plans["oracle"]


def drift_middleware(**kwargs) -> Middleware:
    """Charging reality, believing the assumed model, observing live."""
    sources = faulty_sources_for(
        DATA, FaultProfile(), latency_model=ConstantLatency(TRUE)
    )
    kwargs.setdefault("monitor", CostMonitor(ASSUMED))
    kwargs.setdefault("metrics", MetricsRegistry())
    return Middleware(sources, TRUE, **kwargs)


def controller(
    plan: SRGPlan, config: ReplanConfig, sample=SAMPLE
) -> ReplanController:
    return ReplanController(
        sample,
        FN,
        K,
        N,
        ASSUMED,
        initial_plan=plan,
        config=config,
        optimizer=OPTIMIZER,
    )


def execute(plan: SRGPlan, mode: str, **config_kwargs):
    middleware = drift_middleware()
    ctrl = None
    if mode != "off":
        ctrl = controller(
            plan,
            ReplanConfig(mode=mode, check_every=16, margin=0.05, **config_kwargs),
        )
    engine = FrameworkNC(
        middleware, FN, K, SRGPolicy(plan.depths, plan.schedule), replan=ctrl
    )
    return engine.run(), ctrl, engine


class TestConfig:
    def test_defaults_valid(self):
        config = ReplanConfig()
        assert config.mode in REPLAN_MODES

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "sometimes"},
            {"check_every": 0},
            {"margin": -0.1},
            {"drift_tolerance": 0.9},
            {"breaker_penalty": 0.5},
            {"max_switches": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ReplanConfig(**kwargs)


class TestPlanFingerprint:
    def test_stable_and_distinct(self):
        a = SRGPlan(depths=(0.5, 0.25), schedule=(1, 0))
        b = SRGPlan(depths=(0.5, 0.25), schedule=(1, 0))
        c = SRGPlan(depths=(0.5, 0.26), schedule=(1, 0))
        assert plan_fingerprint(a) == plan_fingerprint(b)
        assert plan_fingerprint(a) != plan_fingerprint(c)
        assert plan_fingerprint(a).startswith("plan-")

    def test_schedule_matters(self):
        a = SRGPlan(depths=(0.5, 0.5), schedule=(0, 1))
        b = SRGPlan(depths=(0.5, 0.5), schedule=(1, 0))
        assert plan_fingerprint(a) != plan_fingerprint(b)


class TestRevisedModel:
    def test_reflects_observed_costs(self):
        middleware = drift_middleware()
        ctrl = controller(misspecified_plan(), ReplanConfig())
        # Discover objects via sorted access, then probe them on
        # predicate 0 enough times to clear min_observations.
        from repro.types import Access

        seen = [middleware.perform(Access.sorted(1))[0] for _ in range(6)]
        for obj in seen:
            middleware.perform(Access.random(0, obj))
        revised, blocked = ctrl.revised_model(middleware)
        assert revised.random_cost(0) == pytest.approx(40.0)
        assert revised.sorted_cost(1) == 1.0  # unobserved: assumed
        assert blocked == ()

    def test_breaker_penalty_finite(self):
        from repro.faults.breaker import BreakerPolicy, breakers_for
        from repro.types import AccessType

        breakers = breakers_for(M, BreakerPolicy(failure_threshold=1, cooldown=10**6))
        middleware = drift_middleware(breakers=breakers)
        breakers[(0, AccessType.RANDOM)].record_failure(0)
        ctrl = controller(misspecified_plan(), ReplanConfig(breaker_penalty=100.0))
        revised, blocked = ctrl.revised_model(middleware)
        assert blocked == ((0, "random"),)
        assert math.isfinite(revised.random_cost(0))
        assert revised.random_cost(0) >= 100.0
        # Capability structure untouched: the channel is costly, not gone.
        assert revised.supports_random(0)


class TestOffMode:
    def test_off_controller_is_normalized_away(self):
        plan = misspecified_plan()
        ctrl = controller(plan, ReplanConfig(mode="off"))
        engine = FrameworkNC(
            drift_middleware(),
            FN,
            K,
            SRGPolicy(plan.depths, plan.schedule),
            replan=ctrl,
        )
        assert engine.replan is None

    def test_off_byte_identical_sync(self):
        plan = misspecified_plan()
        baseline = FrameworkNC(
            drift_middleware(), FN, K, SRGPolicy(plan.depths, plan.schedule)
        ).run()
        with_off, _, _ = execute(plan, "off")
        assert result_to_dict(with_off) == result_to_dict(baseline)

    def test_off_byte_identical_async(self):
        plan = misspecified_plan()
        baseline = FrameworkNC(
            drift_middleware(), FN, K, SRGPolicy(plan.depths, plan.schedule)
        ).run()
        ctrl = controller(plan, ReplanConfig(mode="off"))
        engine = AsyncExecutor(
            drift_middleware(),
            FN,
            K,
            SRGPolicy(plan.depths, plan.schedule),
            concurrency=1,
            replan=ctrl,
        )
        result = asyncio.run(engine.run_async())
        assert result_to_dict(result) == result_to_dict(baseline)


class TestStaticEnvironment:
    def test_always_mode_never_searches_without_change(self):
        """Signature gating: a static environment pays zero re-searches."""
        plan = oracle_plan()
        sources = faulty_sources_for(
            DATA, FaultProfile(), latency_model=ConstantLatency(TRUE)
        )
        middleware = Middleware(
            sources, TRUE, monitor=CostMonitor(TRUE), metrics=MetricsRegistry()
        )
        ctrl = ReplanController(
            SAMPLE,
            FN,
            K,
            N,
            TRUE,
            initial_plan=plan,
            config=ReplanConfig(mode="always", check_every=8),
            optimizer=OPTIMIZER,
        )
        engine = FrameworkNC(
            middleware, FN, K, SRGPolicy(plan.depths, plan.schedule), replan=ctrl
        )
        result = engine.run()
        assert ctrl.checks > 0
        assert ctrl.searches == 0
        assert ctrl.switches == 0
        baseline = FrameworkNC(
            Middleware(
                faulty_sources_for(
                    DATA, FaultProfile(), latency_model=ConstantLatency(TRUE)
                ),
                TRUE,
            ),
            FN,
            K,
            SRGPolicy(plan.depths, plan.schedule),
        ).run()
        assert [r.obj for r in result.ranking] == [
            r.obj for r in baseline.ranking
        ]
        assert result.stats.total_cost() == baseline.stats.total_cost()


class TestDriftReplanning:
    def test_switch_recovers_regret(self):
        """The tentpole end-to-end: drift detected, plan switched, cost
        recovered -- same answers, much closer to the oracle's bill."""
        plan0 = misspecified_plan()
        static, _, _ = execute(plan0, "off")
        replanned, ctrl, engine = execute(plan0, "drift")
        oracle, _, _ = execute(oracle_plan(), "off")

        assert ctrl.switches >= 1
        assert engine.plan_revision == ctrl.revision >= 1
        assert engine.plan_id == ctrl.plan_id != plan_fingerprint(plan0)
        # Correctness is non-negotiable across a switch.
        assert [r.obj for r in replanned.ranking] == [
            r.obj for r in static.ranking
        ]
        regret = static.stats.total_cost() - oracle.stats.total_cost()
        recovered = static.stats.total_cost() - replanned.stats.total_cost()
        assert regret > 0
        assert recovered / regret >= 0.20  # the ISSUE acceptance gate

    def test_switch_published_to_metrics_and_trace(self):
        plan0 = misspecified_plan()
        trace = TraceRecorder()
        middleware = drift_middleware(trace=trace)
        ctrl = controller(
            plan0, ReplanConfig(mode="drift", check_every=16, margin=0.05)
        )
        FrameworkNC(
            middleware,
            FN,
            K,
            SRGPolicy(plan0.depths, plan0.schedule),
            replan=ctrl,
        ).run()
        assert (
            middleware.metrics.counter_value(
                "repro_replan_total", outcome="switched"
            )
            >= 1
        )
        switch_events = [
            e for e in trace.events if e.event == "replan"
            and dict(e.fields)["outcome"] == "switched"
        ]
        assert switch_events
        payload = dict(switch_events[0].fields)
        assert payload["plan_id"] == ctrl.plan_id
        assert payload["from_plan"] == plan_fingerprint(plan0)
        assert payload["remaining_candidate"] < payload["remaining_current"]

    def test_result_metadata_carries_summary(self):
        plan0 = misspecified_plan()
        result, ctrl, _ = execute(plan0, "drift")
        assert result.metadata["replan"] == ctrl.summary()
        assert result.metadata["replan"]["switches"] >= 1

    def test_max_switches_caps_and_reports_once(self):
        plan0 = misspecified_plan()
        middleware = drift_middleware()
        ctrl = controller(
            plan0,
            ReplanConfig(
                mode="always", check_every=8, margin=0.0, max_switches=0
            ),
        )
        FrameworkNC(
            middleware,
            FN,
            K,
            SRGPolicy(plan0.depths, plan0.schedule),
            replan=ctrl,
        ).run()
        assert ctrl.switches == 0
        assert ctrl.searches == 0
        assert ctrl.outcomes.get("capped") == 1  # reported exactly once

    def test_plan_at_exhaustion_stamped(self):
        """Satellite 3: a budget-degraded partial answer names the plan
        (id + revision) that was live when the money ran out."""
        plan0 = misspecified_plan()
        middleware = drift_middleware(budget=40.0)
        ctrl = controller(
            plan0, ReplanConfig(mode="drift", check_every=16, margin=0.05)
        )
        engine = FrameworkNC(
            middleware,
            FN,
            K,
            SRGPolicy(plan0.depths, plan0.schedule),
            replan=ctrl,
            degrade_on_budget=True,
        )
        result = engine.run()
        assert result.metadata["budget_exhausted"]
        stamp = result.metadata["plan_at_exhaustion"]
        assert stamp["id"] == engine.plan_id
        assert stamp["revision"] == engine.plan_revision

    def test_plan_at_exhaustion_stamped_without_replanning(self):
        """The stamp does not require a controller -- any engine with a
        plan id attributes its degraded partials."""
        plan0 = misspecified_plan()
        middleware = drift_middleware(budget=40.0)
        engine = FrameworkNC(
            middleware,
            FN,
            K,
            SRGPolicy(plan0.depths, plan0.schedule),
            degrade_on_budget=True,
        )
        engine.plan_id = plan_fingerprint(plan0)
        result = engine.run()
        assert result.metadata["budget_exhausted"]
        assert result.metadata["plan_at_exhaustion"] == {
            "id": plan_fingerprint(plan0),
            "revision": 0,
        }


class TestProperties:
    """Satellite 4: hypothesis properties over margins and check cadences."""

    @settings(max_examples=12, deadline=None, derandomize=True)
    @given(
        margin=st.floats(min_value=0.0, max_value=0.5),
        check_every=st.integers(min_value=4, max_value=64),
    )
    def test_replanning_bounded_regression(self, margin, check_every):
        """A replanned run never pays materially more than no-replan.

        Each adopted switch had to beat the incumbent's *projected*
        remaining cost by ``margin``; projection error is bounded by the
        sample, so the realized bill stays within a modest slack of the
        static run (and in drifting scenarios is dramatically below it).
        """
        plan0 = misspecified_plan()
        static, _, _ = execute(plan0, "off")
        replanned, _, _ = self._run(plan0, margin, check_every)
        static_cost = static.stats.total_cost()
        replanned_cost = replanned.stats.total_cost()
        # Slack: the margin itself plus sample-projection noise.
        assert replanned_cost <= static_cost * (1.0 + margin) + 100.0
        assert [r.obj for r in replanned.ranking] == [
            r.obj for r in static.ranking
        ]

    def _run(self, plan, margin, check_every):
        middleware = drift_middleware()
        ctrl = controller(
            plan,
            ReplanConfig(mode="drift", check_every=check_every, margin=margin),
        )
        engine = FrameworkNC(
            middleware,
            FN,
            K,
            SRGPolicy(plan.depths, plan.schedule),
            replan=ctrl,
        )
        return engine.run(), ctrl, engine

    @settings(max_examples=8, deadline=None, derandomize=True)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_off_mode_byte_identical_property(self, seed):
        """``replan="off"`` is byte-identical to no controller at all,
        for any dataset seed, sync and async."""
        data = uniform(120, 2, seed=seed)
        fn = WeightedSum([1.0, 1.0])
        model = CostModel.uniform(2)
        plan = SRGPlan(depths=(0.6, 0.6), schedule=(0, 1))
        sample = dummy_uniform_sample(2, 50, 0)

        def build(with_controller: bool):
            middleware = Middleware.over(data, model)
            ctrl = None
            if with_controller:
                ctrl = ReplanController(
                    sample,
                    fn,
                    3,
                    data.n,
                    model,
                    initial_plan=plan,
                    config=ReplanConfig(mode="off"),
                )
            return middleware, ctrl

        mw_a, _ = build(False)
        baseline = FrameworkNC(
            mw_a, fn, 3, SRGPolicy(plan.depths, plan.schedule)
        ).run()
        mw_b, ctrl_b = build(True)
        off_sync = FrameworkNC(
            mw_b, fn, 3, SRGPolicy(plan.depths, plan.schedule), replan=ctrl_b
        ).run()
        assert result_to_dict(off_sync) == result_to_dict(baseline)
        mw_c, ctrl_c = build(True)
        off_async = asyncio.run(
            AsyncExecutor(
                mw_c,
                fn,
                3,
                SRGPolicy(plan.depths, plan.schedule),
                concurrency=1,
                replan=ctrl_c,
            ).run_async()
        )
        assert result_to_dict(off_async) == result_to_dict(baseline)
