"""Tests for the BruteForce oracle algorithm."""

import pytest

from repro.algorithms.brute import BruteForce
from repro.exceptions import CapabilityError
from repro.scoring.functions import Avg, Min
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware
from tests.conftest import assert_valid_topk, mw_over


class TestBruteForce:
    def test_matches_dataset_oracle_exactly(self, small_uniform):
        mw = mw_over(small_uniform)
        result = BruteForce().run(mw, Min(2), 5)
        oracle = small_uniform.topk(Min(2), 5)
        assert result.objects == [entry.obj for entry in oracle]
        assert result.scores == pytest.approx([entry.score for entry in oracle])

    def test_cost_is_full_evaluation(self, small_uniform):
        # Full sorted scans of both lists: 2n sorted accesses, no probes.
        mw = mw_over(small_uniform)
        BruteForce().run(mw, Avg(2), 3)
        assert mw.stats.total_sorted == 2 * small_uniform.n
        assert mw.stats.total_random == 0

    def test_uses_probes_for_random_only_predicates(self, small_uniform):
        model = CostModel((1.0, float("inf")), (float("inf"), 1.0))
        mw = Middleware.over(small_uniform, model)
        result = BruteForce().run(mw, Min(2), 3)
        assert_valid_topk(result, small_uniform, Min(2), 3)
        assert mw.stats.random_counts[1] == small_uniform.n

    def test_universe_mode_probe_only(self, small_uniform):
        mw = Middleware.over(
            small_uniform, CostModel.no_sorted(2), no_wild_guesses=False
        )
        result = BruteForce().run(mw, Min(2), 3)
        assert_valid_topk(result, small_uniform, Min(2), 3)
        assert mw.stats.total_random == 2 * small_uniform.n

    def test_no_discovery_path_rejected(self, small_uniform):
        mw = Middleware.over(small_uniform, CostModel.no_sorted(2))
        with pytest.raises(CapabilityError):
            BruteForce().run(mw, Min(2), 3)

    def test_k_validation(self, small_uniform):
        with pytest.raises(ValueError):
            BruteForce().run(mw_over(small_uniform), Min(2), 0)
