"""End-to-end integration: the full pipeline across the scenario matrix.

Each test exercises a complete user journey -- generate data, build the
scenario, optimize with a search scheme, execute, verify against the
oracle, serialize the plan, reload and re-execute -- the way a deployed
middleware would use the library.
"""

import pytest

from repro.algorithms.nc import NC
from repro.bench.harness import nc_with_dummy_planner, run_algorithm
from repro.bench.scenarios import matrix_scenarios, travel_q1
from repro.core.framework import FrameworkNC
from repro.core.policies import SRGPolicy
from repro.optimizer.optimizer import NCOptimizer
from repro.optimizer.sampling import dummy_uniform_sample, sample_from_dataset
from repro.optimizer.search import HillClimb, NaiveGrid, Strategies
from repro.parallel.executor import ParallelExecutor
from repro.query import parse_query, run_query
from repro.serialization import plan_from_json, plan_to_json


class TestFullPipelinePerScheme:
    @pytest.mark.parametrize(
        "scheme_factory",
        [lambda: NaiveGrid(4), Strategies, lambda: HillClimb(restarts=1)],
        ids=["naive", "strategies", "hclimb"],
    )
    def test_optimize_execute_verify(self, scheme_factory):
        scenario = travel_q1(n=500, k=5)
        sample = sample_from_dataset(scenario.dataset, 100, seed=1)
        plan = NCOptimizer(scheme=scheme_factory()).plan(
            sample,
            scenario.fn,
            scenario.k,
            scenario.n,
            scenario.cost_model,
            min_sample_k=2,
        )
        row = run_algorithm(NC(plan=plan), scenario)
        assert row.correct
        assert row.cost > 0


class TestMatrixPipeline:
    def test_optimize_serialize_reload_execute_everywhere(self):
        """Across every capability cell: plan, persist, reload, run."""
        optimizer = NCOptimizer(scheme=Strategies())
        for scenario in matrix_scenarios(n=200, k=5):
            sample = dummy_uniform_sample(scenario.m, 80, seed=2)
            plan = optimizer.plan(
                sample,
                scenario.fn,
                scenario.k,
                scenario.n,
                scenario.cost_model,
                no_wild_guesses=scenario.no_wild_guesses,
            )
            reloaded = plan_from_json(plan_to_json(plan))
            row = run_algorithm(NC(plan=reloaded), scenario)
            assert row.correct, scenario.name


class TestDeclarativePipeline:
    def test_sql_to_answer_with_optimization(self):
        scenario = travel_q1(n=400, k=5)
        query = parse_query(
            "SELECT name FROM restaurants "
            "ORDER BY min(rating, close) STOP AFTER 5"
        )
        middleware = scenario.middleware()
        result = run_query(
            query,
            middleware,
            schema=["rating", "close"],
            algorithm=nc_with_dummy_planner(scheme=Strategies(), sample_size=60),
        )
        oracle = scenario.oracle()
        assert sorted(round(s, 9) for s in result.scores) == sorted(
            round(entry.score, 9) for entry in oracle
        )


class TestSequentialParallelAgreement:
    def test_same_plan_same_answer_and_cost(self):
        scenario = travel_q1(n=400, k=5)
        plan = NCOptimizer(scheme=Strategies()).plan(
            sample_from_dataset(scenario.dataset, 80, seed=4),
            scenario.fn,
            scenario.k,
            scenario.n,
            scenario.cost_model,
            min_sample_k=2,
        )
        mw_seq = scenario.middleware()
        seq = FrameworkNC(
            mw_seq, scenario.fn, scenario.k, SRGPolicy(plan.depths, plan.schedule)
        ).run()
        mw_par = scenario.middleware()
        par = ParallelExecutor(
            mw_par,
            scenario.fn,
            scenario.k,
            SRGPolicy(plan.depths, plan.schedule),
            concurrency=4,
        ).execute()
        assert sorted(par.result.scores) == sorted(seq.scores)
        assert par.total_cost == mw_seq.stats.total_cost()
        assert par.elapsed <= mw_seq.stats.total_cost()
