"""Direct unit tests for BoundTracker, the baselines' shared machinery."""

import pytest

from repro.algorithms.base import BoundTracker
from repro.core.tasks import UNSEEN
from repro.scoring.functions import Min
from repro.sources.cost import CostModel
from repro.sources.middleware import Middleware
from tests.conftest import mw_over


def make_tracker(ds1, k=1, **mw_kwargs):
    mw = mw_over(ds1, **mw_kwargs)
    return mw, BoundTracker(mw, Min(2), k)


class TestSeeding:
    def test_nwg_mode_starts_with_unseen_only(self, ds1):
        _, tracker = make_tracker(ds1)
        top = tracker.current_topk()
        assert top == [(UNSEEN, 1.0)]

    def test_universe_mode_seeds_everyone(self, ds1):
        mw = mw_over(ds1, no_wild_guesses=False)
        tracker = BoundTracker(mw, Min(2), 3)
        top = tracker.current_topk()
        assert [obj for obj, _ in top] == [2, 1, 0]  # oid tie-break


class TestRecordAndRank:
    def test_new_object_enters_heap(self, ds1):
        mw, tracker = make_tracker(ds1, k=2)
        obj, score = mw.sorted_access(0)  # u3 @ .7
        tracker.record(0, obj, score)
        top = tracker.current_topk()
        assert top[0] == (2, pytest.approx(0.7))
        assert top[1][0] == UNSEEN  # ties at .7, loses to the real object

    def test_current_topk_leaves_heap_intact(self, ds1):
        mw, tracker = make_tracker(ds1, k=2)
        obj, score = mw.sorted_access(0)
        tracker.record(0, obj, score)
        first = tracker.current_topk()
        second = tracker.current_topk()
        assert first == second

    def test_unseen_retires_when_all_seen(self, ds1):
        mw, tracker = make_tracker(ds1, k=5)
        while not mw.exhausted(0):
            obj, score = mw.sorted_access(0)
            tracker.record(0, obj, score)
        top = tracker.current_topk()
        assert UNSEEN not in [obj for obj, _ in top]
        assert len(top) == 3


class TestFinished:
    def test_not_finished_while_top_incomplete(self, ds1):
        mw, tracker = make_tracker(ds1)
        obj, score = mw.sorted_access(0)
        tracker.record(0, obj, score)
        assert tracker.finished() is None
        assert tracker.top_incomplete() == (2, pytest.approx(0.7))

    def test_finished_when_top_complete(self, ds1):
        mw, tracker = make_tracker(ds1)
        obj, score = mw.sorted_access(0)
        tracker.record(0, obj, score)
        tracker.record(1, obj, mw.random_access(1, obj))
        ranking = tracker.finished()
        assert ranking is not None
        assert ranking[0].obj == 2
        assert ranking[0].score == pytest.approx(0.7)

    def test_top_incomplete_reports_unseen(self, ds1):
        _, tracker = make_tracker(ds1)
        assert tracker.top_incomplete() == (UNSEEN, 1.0)


class TestPopPush:
    def test_pop_returns_current_best(self, ds1):
        mw, tracker = make_tracker(ds1)
        obj, score = mw.sorted_access(0)
        tracker.record(0, obj, score)
        popped = tracker.pop_top()
        assert popped == (2, pytest.approx(0.7))
        tracker.push(2)
        assert tracker.pop_top() == (2, pytest.approx(0.7))

    def test_pop_exhausts(self, ds1):
        mw = mw_over(ds1, no_wild_guesses=False)
        tracker = BoundTracker(mw, Min(2), 1)
        for _ in range(3):
            assert tracker.pop_top() is not None
        assert tracker.pop_top() is None
