"""Generate docs/API.md from the library's docstrings.

Walks every public module of :mod:`repro`, collecting module docstrings,
public classes (with their public methods' signatures and first doc
lines) and public functions. Run from the repository root::

    python tools/gen_api_docs.py

The output is deterministic, so the checked-in ``docs/API.md`` can be
diffed in review; ``tests/test_api_docs.py`` fails when it drifts from
the code.
"""

from __future__ import annotations

import importlib
import inspect
import pathlib
import pkgutil
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

import repro  # noqa: E402


def first_line(doc: str | None) -> str:
    if not doc:
        return ""
    return doc.strip().splitlines()[0]


def signature_of(member) -> str:
    try:
        return str(inspect.signature(member))
    except (TypeError, ValueError):
        return "(...)"


def public_modules() -> list[str]:
    names = ["repro"]
    for _finder, name, _ispkg in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    ):
        if any(part.startswith("_") for part in name.split(".")):
            continue
        names.append(name)
    return sorted(names)


def document_class(name: str, cls) -> list[str]:
    lines = [f"### class `{name}`", "", first_line(cls.__doc__), ""]
    methods = []
    for attr_name, attr in sorted(vars(cls).items()):
        if attr_name.startswith("_"):
            continue
        if inspect.isfunction(attr):
            methods.append(
                f"- `{attr_name}{signature_of(attr)}` — {first_line(attr.__doc__)}"
            )
        elif isinstance(attr, property):
            methods.append(
                f"- `{attr_name}` *(property)* — {first_line(attr.fget.__doc__ if attr.fget else None)}"
            )
        elif isinstance(attr, (classmethod, staticmethod)):
            inner = attr.__func__
            methods.append(
                f"- `{attr_name}{signature_of(inner)}` — {first_line(inner.__doc__)}"
            )
    if methods:
        lines.extend(methods)
        lines.append("")
    return lines


def generate() -> str:
    lines = [
        "# API reference",
        "",
        "_Generated from docstrings by `tools/gen_api_docs.py`; do not edit_",
        "_by hand — regenerate after changing public APIs._",
        "",
    ]
    for module_name in public_modules():
        module = importlib.import_module(module_name)
        members = [
            (name, member)
            for name, member in sorted(vars(module).items())
            if not name.startswith("_")
            and (inspect.isclass(member) or inspect.isfunction(member))
            and getattr(member, "__module__", None) == module.__name__
        ]
        if not members and module_name != "repro":
            continue
        lines.append(f"## `{module_name}`")
        lines.append("")
        lines.append(first_line(module.__doc__))
        lines.append("")
        for name, member in members:
            if inspect.isclass(member):
                lines.extend(document_class(name, member))
            else:
                lines.append(
                    f"### `{name}{signature_of(member)}`"
                )
                lines.append("")
                lines.append(first_line(member.__doc__))
                lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def main() -> None:
    target = pathlib.Path(__file__).parent.parent / "docs" / "API.md"
    target.write_text(generate())
    print(f"wrote {target} ({len(generate().splitlines())} lines)")


if __name__ == "__main__":
    main()
