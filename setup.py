"""Setuptools shim.

Kept alongside pyproject.toml so that ``pip install -e .`` works in
offline environments whose setuptools lacks PEP 660 support (no ``wheel``
package available).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Unified cost-based optimization for top-k queries over web sources "
        "(Hwang & Chang, ICDE 2005 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
