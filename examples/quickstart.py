"""Quickstart: the paper's running example, end to end.

Walks through Dataset 1 (Figure 3) exactly as the paper does:

1. define the top-1 query ``Q = (min(p1, p2), k=1)``;
2. stand up simulated web sources behind a metered middleware;
3. run Framework NC under two SR/G plans -- the focused configuration of
   Figure 7 and the parallel configuration of Figure 8 -- printing each
   access as it happens;
4. let the cost-based optimizer pick a plan by itself and compare.

Run:  python examples/quickstart.py
"""

from repro import (
    CostModel,
    FrameworkNC,
    Middleware,
    Min,
    NCOptimizer,
    SRGPolicy,
    dataset1,
)
from repro.optimizer.search import NaiveGrid


def trace_run(label, depths):
    """Run the query under one depth configuration, narrating accesses."""
    data = dataset1()
    middleware = Middleware.over(data, CostModel.uniform(2), record_log=True)

    def narrate(step):
        target = "unseen" if step.target < 0 else f"u{step.target + 1}"
        alts = ", ".join(str(a) for a in step.alternatives)
        print(
            f"  step {step.step}: task of {target:>6}  "
            f"choices {{{alts}}}  ->  {step.access}"
        )

    engine = FrameworkNC(
        middleware, Min(2), 1, SRGPolicy(depths), observer=narrate
    )
    print(f"\n{label}: Delta = ({depths[0]:.2f}, {depths[1]:.2f})")
    result = engine.run()
    answer = result.ranking[0]
    print(
        f"  answer: u{answer.obj + 1} with score {answer.score:.2f}  "
        f"(total cost {middleware.stats.total_cost():g}, "
        f"{middleware.stats.total_sorted} sorted + "
        f"{middleware.stats.total_random} random)"
    )
    return middleware.stats.total_cost()


def main():
    print("Dataset 1 (Figure 3): three restaurants, two predicates")
    data = dataset1()
    for obj in range(data.n):
        p1, p2 = data.object_scores(obj)
        print(f"  u{obj + 1}: rating={p1:.2f}  close={p2:.2f}")

    focused = trace_run("Figure 7 trace (focused plan)", [0.75, 1.0])
    parallel = trace_run("Figure 8 trace (parallel plan)", [0.65, 0.85])
    print(
        f"\nExample 11's contrast: focused costs {focused:g}, "
        f"parallel costs {parallel:g} -- same answer."
    )

    # Let the optimizer choose. The database is tiny (3 objects), so the
    # dataset itself serves as the sample: simulation runs are then exact
    # executions. (Real deployments sample -- see travel_agent.py -- and
    # a sample larger than the database would distort the scaled
    # retrieval size k_s.)
    plan = NCOptimizer(scheme=NaiveGrid(5)).plan(
        data,
        Min(2),
        k=1,
        n_total=data.n,
        cost_model=CostModel.uniform(2),
    )
    print(f"\nCost-based optimizer picked: {plan.describe()}")
    optimized = trace_run("Optimized plan", list(plan.depths))
    print(f"\nOptimized run cost: {optimized:g}")


if __name__ == "__main__":
    main()
