"""The Web travel agent (Examples 1 and 2), end to end.

Reproduces the paper's motivating scenario on synthetic Chicago data:

* **Q1** -- top-5 restaurants by ``min(rating, close)``, served by two
  sources whose random accesses are dearer than sorted accesses, with
  different scales and ratios (reconstructed Figure 1(a) latencies);
* **Q2** -- top-5 hotels by ``min(close, stars, cheap)``, where one
  source's sorted access bundles every attribute, so follow-up random
  accesses are free (Figure 1(b)) -- the scenario no specialized
  algorithm was designed for.

For each query, the cost-based NC optimizer plans on a sample, executes,
and is compared against the classic algorithms over the same metered
sources.

Run:  python examples/travel_agent.py
"""

from repro import CA, FA, NC, NRA, QuickCombine, TA
from repro.bench.harness import (
    compare,
    nc_with_true_sample_planner,
    run_algorithm,
)
from repro.bench.reporting import ascii_table
from repro.bench.scenarios import travel_q1, travel_q2
from repro.optimizer.search import HillClimb


def run_query(scenario):
    print(f"\n=== {scenario.name}: {scenario.description} ===")
    print(
        f"    {scenario.n} objects, costs {scenario.cost_model.describe()} (ms)"
    )

    nc = nc_with_true_sample_planner(
        scenario, scheme=HillClimb(restarts=3), sample_size=200
    )
    plan = nc.resolve_plan(scenario.middleware(), scenario.fn, scenario.k)
    print(f"    optimizer chose {plan.describe()} "
          f"({plan.estimator_runs} simulation runs)")

    rows = [run_algorithm(nc, scenario)]
    rows.extend(compare(scenario, [TA(), CA(), FA(), QuickCombine(), NRA()]))
    best = min(row.cost for row in rows)
    print(
        ascii_table(
            ["algorithm", "latency (ms)", "sorted", "random", "% of best"],
            [
                [
                    row.algorithm,
                    row.cost,
                    row.sorted_accesses,
                    row.random_accesses,
                    100.0 * row.cost / best,
                ]
                for row in rows
            ],
        )
    )

    winner = rows[0].result
    print("    top answers:")
    for rank, entry in enumerate(winner.ranking, start=1):
        print(f"      {rank}. object #{entry.obj} score {entry.score:.3f}")
    assert all(row.correct for row in rows)


def main():
    run_query(travel_q1(n=2000, k=5))
    run_query(travel_q2(n=2000, k=5))
    print(
        "\nNote Q2: with free random accesses, NC descends only the most "
        "selective list and probes the rest -- the '?' cell of the "
        "paper's Figure 2 matrix that no specialized algorithm covers."
    )


if __name__ == "__main__":
    main()
