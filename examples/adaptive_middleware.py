"""Runtime adaptivity: the same query under drifting source costs.

Web sources are dynamic -- "cost scenarios change over time, depending on
source load and availability" (Section 1). A static algorithm choice
fossilizes one scenario's trade-offs; cost-based optimization re-plans at
each query. This example issues the *same* top-k query while the sources'
access costs drift through four regimes, re-optimizing each time, and
shows how the chosen plan morphs:

* balanced costs       -> moderate focused descent;
* random access spikes -> deeper sorted descent, probes rationed;
* random access free   -> shallow descent, probe everything;
* sorted access dies   -> pure probing over the known universe.

A frozen plan (optimized once for the first regime, reused forever) is
priced alongside, quantifying what adaptivity buys.

Run:  python examples/adaptive_middleware.py
"""

import math

from repro import (
    CostModel,
    FrameworkNC,
    Middleware,
    Min,
    NCOptimizer,
    SRGPolicy,
    dummy_uniform_sample,
    uniform,
)
from repro.bench.reporting import ascii_table
from repro.optimizer.search import NaiveGrid

REGIMES = [
    ("balanced", CostModel.uniform(2, cs=1.0, cr=1.0)),
    ("probe spike (cr x20)", CostModel.uniform(2, cs=1.0, cr=20.0)),
    ("probes free (cr=0)", CostModel.uniform(2, cs=1.0, cr=0.0)),
    ("sorted outage", CostModel.no_sorted(2)),
]


def execute(data, cost_model, depths, schedule, k):
    universe_known = not any(cost_model.sorted_capabilities)
    middleware = Middleware.over(
        data, cost_model, no_wild_guesses=not universe_known
    )
    engine = FrameworkNC(
        middleware, Min(2), k, SRGPolicy(depths, schedule)
    )
    engine.run()
    return middleware.stats.total_cost()


def main():
    data = uniform(1500, 2, seed=31)
    k = 10
    optimizer = NCOptimizer(scheme=NaiveGrid(6))
    sample = dummy_uniform_sample(2, 150, seed=1)

    frozen_plan = None
    rows = []
    for label, model in REGIMES:
        universe_known = not any(model.sorted_capabilities)
        plan = optimizer.plan(
            sample,
            Min(2),
            k,
            data.n,
            model,
            no_wild_guesses=not universe_known,
        )
        if frozen_plan is None:
            frozen_plan = plan
        adaptive_cost = execute(data, model, plan.depths, plan.schedule, k)
        if any(model.sorted_capabilities):
            frozen_cost = execute(
                data, model, frozen_plan.depths, frozen_plan.schedule, k
            )
            frozen_text = f"{frozen_cost:,.0f}"
            waste = (
                f"{100.0 * (frozen_cost - adaptive_cost) / adaptive_cost:+.0f}%"
                if adaptive_cost
                else "--"
            )
        else:
            # The frozen plan still wants sorted accesses that no longer
            # exist; it simply cannot run in this regime.
            frozen_text, waste = "infeasible", "--"
        depths = ",".join(f"{d:.2f}" for d in plan.depths)
        rows.append(
            [label, f"({depths})", adaptive_cost, frozen_text, waste]
        )

    print("Same query (top-10 by min), four cost regimes:\n")
    print(
        ascii_table(
            [
                "regime",
                "re-optimized Delta",
                "adaptive cost",
                "frozen-plan cost",
                "frozen overhead",
            ],
            rows,
        )
    )
    print(
        "\nThe frozen plan was optimal for the first regime; every drift "
        "makes it pay, and the sorted outage strands it entirely."
    )


if __name__ == "__main__":
    main()
