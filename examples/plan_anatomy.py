"""Plan anatomy: dissecting how different plans spend their budget.

Runs the same query (top-10 by min over uniform data) under four plans --
TA-equivalent equal depths, the optimizer's pick, a probe-only plan and a
scan-only plan -- with full access logging, then uses the trace analytics
of :mod:`repro.analysis` to show each plan's anatomy: per-predicate cost
breakdown, phase structure (descent vs probing), and probe distribution.
Finally each is scored against the instance's offline-optimal plan.

Run:  python examples/plan_anatomy.py
"""

from repro import (
    CostModel,
    FrameworkNC,
    Middleware,
    Min,
    NCOptimizer,
    SRGPolicy,
    dummy_uniform_sample,
    format_trace_summary,
    offline_optimal,
    summarize_trace,
    uniform,
)
from repro.bench.scenarios import Scenario
from repro.optimizer.search import NaiveGrid


def run_plan(scenario, label, depths, schedule=None):
    middleware = Middleware.over(
        scenario.dataset, scenario.cost_model, record_log=True
    )
    FrameworkNC(
        middleware,
        scenario.fn,
        scenario.k,
        SRGPolicy(depths, schedule),
    ).run()
    summary = summarize_trace(middleware.stats.log, scenario.cost_model)
    depths_text = ", ".join(f"{d:.2f}" for d in depths)
    print(f"\n--- {label}  [Delta = ({depths_text})] ---")
    print(format_trace_summary(summary))
    kind = "sorted-then-random" if summary.is_sorted_then_random else "interleaved"
    print(f"  schedule shape: {kind}")
    return summary.total_cost


def main():
    scenario = Scenario(
        name="anatomy",
        description="top-10 by min, cr = 4*cs",
        dataset=uniform(1200, 2, seed=23),
        fn=Min(2),
        k=10,
        cost_model=CostModel.uniform(2, cs=1.0, cr=4.0),
    )
    print(f"{scenario.description}, n={scenario.n}")

    plan = NCOptimizer(scheme=NaiveGrid(6)).plan(
        dummy_uniform_sample(2, 150, seed=2),
        scenario.fn,
        scenario.k,
        scenario.n,
        scenario.cost_model,
    )

    costs = {
        "equal depth (TA-like)": run_plan(scenario, "equal depth (TA-like)", [0.8, 0.8]),
        "optimizer's pick": run_plan(
            scenario, "optimizer's pick", list(plan.depths), list(plan.schedule)
        ),
        "probe-only": run_plan(scenario, "probe-only", [1.0, 1.0]),
        "scan-only": run_plan(scenario, "scan-only", [0.0, 0.0]),
    }

    optimum = offline_optimal(scenario, resolution=5)
    print(f"\noffline-optimal plan on this instance: cost {optimum.cost:g} "
          f"at Delta = {tuple(round(d, 2) for d in optimum.depths)}")
    for label, cost in costs.items():
        print(f"  {label:<22} ratio {cost / optimum.cost:.2f}")


if __name__ == "__main__":
    main()
