"""One framework across the whole access-capability matrix (Figure 2).

The literature built a different algorithm for every cell of the
(sorted access x random access) capability/cost matrix. This example runs
cost-based NC, side by side with each cell's specialist, across all six
cells -- including the unexplored cheap-random ``?`` cell -- over the
same dataset and query.

Run:  python examples/capability_matrix.py
"""

from repro import CA, FA, MPro, NRA, QuickCombine, SRCombine, StreamCombine, TA, Upper
from repro.bench.harness import compare, nc_with_dummy_planner
from repro.bench.reporting import ascii_table
from repro.bench.scenarios import matrix_scenarios
from repro.optimizer.search import NaiveGrid
from repro.scoring.functions import Min

SPECIALISTS = {
    "uniform": [TA(), FA(), QuickCombine()],
    "expensive-ra": [CA(), SRCombine(), TA()],
    "no-ra": [NRA(), StreamCombine()],
    "no-sa": [MPro(), Upper()],
    "cheap-ra": [TA(), QuickCombine()],
    "zero-ra": [TA(), NRA()],
}


def main():
    nc = nc_with_dummy_planner(scheme=NaiveGrid(6), sample_size=150)
    rows = []
    for scenario in matrix_scenarios(n=1000, k=10, fn_factory=Min):
        cell_rows = compare(scenario, [nc] + SPECIALISTS[scenario.name])
        best = min(row.cost for row in cell_rows)
        for row in cell_rows:
            rows.append(
                [
                    scenario.name,
                    row.algorithm,
                    row.cost,
                    100.0 * row.cost / best,
                    "ok" if row.correct else "WRONG",
                ]
            )
        rows.append(["", "", "", "", ""])

    print("Figure 2 matrix: top-10 by min over 1000 uniform objects\n")
    print(
        ascii_table(
            ["cell", "algorithm", "total cost", "% of cell best", "answer"],
            rows[:-1],
        )
    )
    print(
        "\nEvery specialist is confined to its cell; NC runs in all of "
        "them, matching or beating each one at home."
    )


if __name__ == "__main__":
    main()
