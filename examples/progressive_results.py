"""Progressive retrieval: streaming answers, next-k, and approximation.

Interactive clients rarely want to block until all of top-k is proven:
they render answers as they are confirmed, fetch "more results" on
demand, and often accept near-top answers for a fraction of the cost.
This example demonstrates all three on one engine:

1. stream answers as Theorem 1 confirms them, showing the cost meter at
   each confirmation;
2. continue the *same* engine for the next batch (next-k) and compare
   against the cost of a fresh top-(k+j) run;
3. sweep the approximation knob theta and chart cost vs actual answer
   quality.

Run:  python examples/progressive_results.py
"""

import itertools

from repro import (
    Avg,
    CostModel,
    FrameworkNC,
    Middleware,
    Min,
    SRGPolicy,
    zipf_skewed,
)

DATA = zipf_skewed(2000, 2, skew=1.5, seed=77)
FN = Min(2)
COSTS = CostModel.uniform(2, cs=1.0, cr=2.0)


def engine(fn=FN, theta=1.0):
    middleware = Middleware.over(DATA, COSTS)
    return (
        FrameworkNC(middleware, fn, 5, SRGPolicy([0.6, 0.6]), theta=theta),
        middleware,
    )


def main():
    print(f"database: {DATA.n} skewed objects; query: top-5 by min, cr=2cs\n")

    # 1. Streaming confirmations.
    nc, middleware = engine()
    stream = nc.answers()
    print("streaming answers as they are confirmed:")
    for rank, entry in enumerate(itertools.islice(stream, 5), start=1):
        print(
            f"  #{rank}: object {entry.obj:>4} score {entry.score:.4f}   "
            f"(cost so far: {middleware.stats.total_cost():g})"
        )
    cost_at_5 = middleware.stats.total_cost()

    # 2. Next-k: continue the same engine for five more answers.
    print("\nuser clicks 'more results' -- continuing the same engine:")
    for rank, entry in enumerate(itertools.islice(stream, 5), start=6):
        print(
            f"  #{rank}: object {entry.obj:>4} score {entry.score:.4f}   "
            f"(cost so far: {middleware.stats.total_cost():g})"
        )
    cost_at_10 = middleware.stats.total_cost()

    fresh_mw = Middleware.over(DATA, COSTS)
    FrameworkNC(fresh_mw, FN, 10, SRGPolicy([0.6, 0.6])).run()
    print(
        f"\nincremental top-10 cost {cost_at_10:g} vs fresh top-10 run "
        f"{fresh_mw.stats.total_cost():g} -- continuation is free of rework"
        f" (marginal cost {cost_at_10 - cost_at_5:g})."
    )

    # 3. The approximation knob. Note the scoring function matters: under
    # min, an incomplete object's proven lower bound is 0 (one unknown
    # predicate could zero the whole score), so theta can never fire; avg
    # accumulates partial lower bounds, which approximation can cash in.
    avg = Avg(2)
    exact_top = {entry.obj for entry in DATA.topk(avg, 5)}
    print("\napproximate retrieval (theta sweep, F=avg):")
    print("  theta   cost   % of exact   true-top-5 overlap")
    exact_cost = None
    for theta in (1.0, 1.05, 1.1, 1.25, 1.5, 2.0):
        nc, middleware = engine(fn=avg, theta=theta)
        result = nc.run()
        cost = middleware.stats.total_cost()
        if exact_cost is None:
            exact_cost = cost
        overlap = len(exact_top & set(result.objects))
        print(
            f"  {theta:>5.2f}  {cost:>5g}   {100 * cost / exact_cost:>8.1f}%"
            f"   {overlap}/5"
        )
    print(
        "\nEach returned object y is guaranteed theta*F(y) >= F(x) for every "
        "non-returned x. The cliff is structural: with m=2 and avg, an "
        "object known on one predicate has a proven lower bound of about "
        "half its upper bound, so approximate confirmation first becomes "
        "possible near theta = 2 (in general, m/(m - known predicates))."
    )


if __name__ == "__main__":
    main()
