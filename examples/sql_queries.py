"""Declarative top-k querying with the SQL-like front end.

The paper writes its motivating queries in SQL-like syntax (Examples
1-2); this example runs that exact surface syntax end to end:

1. parse query text into a monotone scoring function + retrieval size;
2. bind predicate names to simulated web sources;
3. execute with the cost-based NC algorithm (or any baseline);
4. rerun the same text under a different cost scenario and watch the
   optimizer change the plan -- the declarative/physical separation that
   cost-based optimization buys.

Run:  python examples/sql_queries.py
"""

from repro import CostModel, Middleware, TA, parse_query, run_query
from repro.bench.reporting import ascii_table
from repro.data.travel import restaurants_dataset

Q1_TEXT = (
    "SELECT name FROM restaurants "
    "ORDER BY min(rating, close) STOP AFTER 5"
)
WEIGHTED_TEXT = (
    "SELECT name FROM restaurants "
    "ORDER BY 0.7*rating + 0.3*close STOP AFTER 5"
)
SCHEMA = ["rating", "close"]


def show(result, label):
    print(f"\n{label}")
    print(f"  plan: {result.metadata.get('plan', '(fixed algorithm)')}")
    print(
        ascii_table(
            ["rank", "object", "score"],
            [
                [rank, entry.obj, f"{entry.score:.4f}"]
                for rank, entry in enumerate(result.ranking, start=1)
            ],
        )
    )
    print(f"  total access cost: {result.total_cost():g}")


def main():
    data = restaurants_dataset(n=1500, seed=11)

    print(f"query text:\n  {Q1_TEXT}")
    query = parse_query(Q1_TEXT)
    print(f"parsed: F over {query.predicates}, k={query.k}")

    # Scenario A: probes are 10x the sorted cost.
    costs_a = CostModel.uniform(2, cs=1.0, cr=10.0)
    result_a = run_query(query, Middleware.over(data, costs_a), SCHEMA)
    show(result_a, "scenario A (cr = 10*cs), cost-based NC")

    # Scenario B: probes are free -- same query text, different plan.
    costs_b = CostModel.uniform(2, cs=1.0, cr=0.0)
    result_b = run_query(query, Middleware.over(data, costs_b), SCHEMA)
    show(result_b, "scenario B (cr = 0), cost-based NC")

    assert result_a.objects == result_b.objects  # same answer, either way

    # Any algorithm plugs into the same front end.
    result_ta = run_query(
        query, Middleware.over(data, costs_a), SCHEMA, algorithm=TA()
    )
    show(result_ta, "scenario A again, classic TA")
    print(
        f"\nNC cost {result_a.total_cost():g} vs TA cost "
        f"{result_ta.total_cost():g} on the same query and sources."
    )

    # A weighted-sum preference, straight from text.
    weighted = parse_query(WEIGHTED_TEXT)
    result_w = run_query(weighted, Middleware.over(data, costs_a), SCHEMA)
    show(result_w, f"weighted query: {weighted.expr}")


if __name__ == "__main__":
    main()
